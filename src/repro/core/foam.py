"""FOAM: the coupled ocean-atmosphere model (the paper's contribution).

Assembles the spectral atmosphere (:mod:`repro.atmosphere`), the fast ocean
(:mod:`repro.ocean`) and the overlap-grid coupler (:mod:`repro.coupler`)
into the coupled system of the paper:

* the atmosphere advances on its 30-minute step; its lower boundary
  condition is replaced by coupler-supplied surface state and fluxes
  ("the principal modification to PCCM2 ... was to replace the lower
  boundary condition routine");
* the coupler computes the turbulent fluxes on the overlap grid each
  atmosphere step, runs the land/bucket/river/ice models, and accumulates
  the ocean forcing;
* the ocean is called once per 6 simulated hours (4x per day, Figure 2)
  with the time-averaged forcing;
* radiation is recomputed twice per simulated day.

Physics and coupling are applied as adjustments to the spectral state
between dynamics steps (process splitting), with moisture carried on the
grid and transported semi-Lagrangially as in PCCM2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atmosphere.dynamics import AtmosphereState, SpectralDynamicalCore
from repro.atmosphere.physics import PhysicsSuite
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.atmosphere.vertical import VerticalGrid
from repro.core.config import FoamConfig, test_config
from repro.coupler.coupler import CouplerState, FluxCoupler
from repro.ocean.grid import OceanGrid, world_topography
from repro.ocean.model import OceanForcing, OceanModel, OceanState
from repro.perf.profiler import profile_section
from repro.util.constants import STEFAN_BOLTZMANN


@dataclass
class FoamState:
    """Complete prognostic state of the coupled system."""

    atm_prev: AtmosphereState
    atm_curr: AtmosphereState
    ocean: OceanState
    coupler: CouplerState
    time: float = 0.0


@dataclass
class CoupledDiagnostics:
    """Running diagnostics collected during an integration."""

    sst_sum: np.ndarray | None = None
    sst_count: int = 0
    precip_sum: np.ndarray | None = None
    history_sst: list = field(default_factory=list)   # monthly-ish SST means
    history_time: list = field(default_factory=list)

    def mean_sst(self) -> np.ndarray:
        if self.sst_count == 0:
            raise RuntimeError("no SST samples accumulated")
        return self.sst_sum / self.sst_count


class FoamModel:
    """The coupled FOAM system; one instance owns all three components."""

    def __init__(self, config: FoamConfig | None = None,
                 land_mask: np.ndarray | None = None,
                 depth: np.ndarray | None = None):
        self.config = config or test_config()
        cfg = self.config

        # One precision policy threads through every component constructor.
        policy = cfg.dtype_policy
        self.policy = policy
        self.transform = SpectralTransform(cfg.atm_nlat, cfg.atm_nlon,
                                           Truncation(cfg.atm_mmax),
                                           dtype=policy)
        self.vgrid = VerticalGrid.ccm_like(cfg.atm_nlev, dtype=policy)
        self.dycore = SpectralDynamicalCore(self.transform, self.vgrid,
                                            dt=cfg.atm_dt,
                                            robert=cfg.robert_filter)
        self.physics = PhysicsSuite(radiation_interval=cfg.radiation_interval)

        self.ocean_grid = OceanGrid(nx=cfg.ocn_nx, ny=cfg.ocn_ny,
                                    nlev=cfg.ocn_nlev, dtype=policy)
        if land_mask is None or depth is None:
            land_mask, depth = world_topography(self.ocean_grid)
        self.ocean = OceanModel(self.ocean_grid, land_mask, depth,
                                cfg.ocean_params)
        self.coupler = FluxCoupler(self.transform.lats, cfg.atm_nlon,
                                   self.ocean_grid.lats, cfg.ocn_nx,
                                   land_mask, rng_seed=cfg.seed + 7,
                                   dtype=policy)
        # Running ocean-forcing accumulator between ocean calls.
        self._reset_ocean_accumulator()

    # ------------------------------------------------------------------
    def _reset_ocean_accumulator(self) -> None:
        ny, nx = self.ocean_grid.ny, self.ocean_grid.nx
        self._acc = OceanForcing.zeros(ny, nx, dtype=self.policy.float_dtype)
        self._acc_steps = 0

    def initial_state(self, seed: int | None = None) -> FoamState:
        seed = self.config.seed if seed is None else seed
        atm = self.dycore.initial_state("isothermal_rest", seed=seed,
                                        noise_amplitude=1e-8)
        # Moist initial atmosphere: ~60 % RH near the surface, drying rapidly
        # aloft (RH * sigma^2), hard-capped at 25 g/kg — without the vertical
        # taper the tiny saturation *pressure* aloft makes qsat explode as a
        # mixing ratio and its condensation heats the stratosphere by
        # hundreds of kelvin in one step.
        diag = self.dycore.diagnose(atm)
        from repro.util.thermo import saturation_mixing_ratio
        rh_profile = 0.6 * self.vgrid.sigma[:, None, None] ** 2
        atm.q = np.minimum(
            rh_profile * saturation_mixing_ratio(diag.temp, diag.pressure),
            0.025).astype(self.policy.float_dtype, copy=False)
        ocn = self.ocean.initial_state()
        cpl = self.coupler.initial_state()
        prev = atm
        curr = self.dycore._forward_start(atm)
        return FoamState(atm_prev=prev, atm_curr=curr, ocean=ocn,
                         coupler=cpl, time=0.0)

    # ------------------------------------------------------------------
    def coupled_step(self, state: FoamState) -> FoamState:
        """One atmosphere step of the coupled system (30 simulated minutes).

        Profiler sections follow the event-simulator's decomposition
        (``calibrate_from_profile`` depends on these names): top-level
        ``atmosphere`` / ``coupler`` / ``ocean``, with ``dynamics`` under
        ``atmosphere`` entered exactly once per coupled step.
        """
        cfg = self.config
        dt = cfg.atm_dt
        tr = self.transform
        curr = state.atm_curr
        with profile_section("atmosphere"):
            diag = self.dycore.diagnose(curr)
        sst = self.ocean.sst(state.ocean)

        # --- coupler: surface state and turbulent fluxes (overlap grid) ---
        with profile_section("coupler"):
            surface = self.coupler.surface_state_for_atm(state.coupler, sst)
            turb = self.coupler.turbulent_fluxes(
                state.coupler, t_air=diag.temp[-1], q_air=curr.q[-1],
                u_air=diag.u[-1], v_air=diag.v[-1], ps=diag.ps,
                sst_celsius=sst)

        # --- atmosphere physics with coupler-owned surface fluxes ----------
        with profile_section("atmosphere"):
            with profile_section("physics"):
                phys = self.physics.compute(
                    temp=diag.temp, q=curr.q, u=diag.u, v=diag.v,
                    pressure=diag.pressure, ps=diag.ps,
                    geopotential=diag.geopotential, dsigma=self.vgrid.dsigma,
                    surface=surface, dt=dt, time=state.time,
                    lats=tr.lats, lons=tr.lons, external_fluxes=turb["atm"])

            # Apply physics adjustments to the spectral state (process split).
            with profile_section("spectral_update"):
                new_curr = curr.copy()
                for l in range(self.vgrid.nlev):
                    new_curr.temp[l] += dt * tr.analyze(phys.dtdt[l])
                    dv, dd = tr.vortdiv_from_uv(phys.dudt[l], phys.dvdt[l])
                    new_curr.vort[l] += dt * dv
                    new_curr.div[l] += dt * dd
                new_curr.q = np.maximum(curr.q + dt * phys.dqdt, 0.0)

        precip = phys.precip_conv + phys.precip_strat

        # --- land, hydrology, rivers (atmosphere grid) ----------------------
        t_sfc_atm = surface.t_sfc
        net_sfc = (phys.fluxes["sw_sfc"] + phys.fluxes["lw_down"]
                   - STEFAN_BOLTZMANN * t_sfc_atm**4
                   - phys.fluxes["shf"] - phys.fluxes["lhf"])
        with profile_section("coupler"):
            with profile_section("land_rivers"):
                new_cpl, discharge_atm, cpl_diags = self.coupler.step_land_and_rivers(
                    state.coupler, precip=precip, evap=phys.fluxes["evap"],
                    t_low1=diag.temp[-1], t_low2=diag.temp[-2],
                    net_land_flux=net_sfc, dt=dt)

            # --- accumulate ocean forcing -----------------------------------
            with profile_section("regrid_merge"):
                ov = self.coupler.overlap
                rad_ocn = self.coupler.surface_radiation_to_ocean(
                    sw_sfc=phys.fluxes["sw_sfc"], lw_down=phys.fluxes["lw_down"],
                    t_sfc=t_sfc_atm)
                heat_ocn = rad_ocn - turb["ocn_turb_heat_loss"]
                precip_ocn = ov.to_ocn(np.where(self.coupler._water_overlap,
                                                ov.from_atm(precip), 0.0))
                discharge_ocn = self.coupler.discharge_to_ocean_grid(discharge_atm)
                fresh = precip_ocn - turb["ocn_evap"] + discharge_ocn

                self._acc.taux += turb["ocn_taux"]
                self._acc.tauy += turb["ocn_tauy"]
                self._acc.heat_flux += heat_ocn
                self._acc.freshwater += fresh
                self._acc_steps += 1

        new_ocean = state.ocean
        new_time = state.time + dt

        # --- ocean call (every 6 simulated hours) ---------------------------
        if self._acc_steps >= cfg.atm_steps_per_coupling:
            n = self._acc_steps
            forcing = OceanForcing(self._acc.taux / n, self._acc.tauy / n,
                                   self._acc.heat_flux / n,
                                   self._acc.freshwater / n)
            # Sea ice first: it converts persistent heat loss at the clamp
            # into ice and shields the stress.
            t_air_ocn = ov.to_ocn(ov.from_atm(diag.temp[-1]))
            with profile_section("coupler"):
                with profile_section("seaice"):
                    new_cpl, ice_fw = self.coupler.step_sea_ice(
                        new_cpl, sst_celsius=sst,
                        ocean_heat_loss=-forcing.heat_flux,
                        t_air_on_ocn=t_air_ocn,
                        dt=cfg.ocean_coupling_interval)
            forcing.freshwater += ice_fw
            with profile_section("ocean"):
                new_ocean = self.ocean.step(state.ocean, forcing)
            self._reset_ocean_accumulator()

        # --- atmosphere dynamics step ----------------------------------------
        with profile_section("atmosphere"):
            with profile_section("dynamics"):
                new_prev, new_next = self.dycore.step(state.atm_prev, new_curr)
        return FoamState(atm_prev=new_prev, atm_curr=new_next,
                         ocean=new_ocean, coupler=new_cpl, time=new_time)

    # ------------------------------------------------------------------
    def run_days(self, state: FoamState, days: float,
                 diagnostics: CoupledDiagnostics | None = None,
                 sst_sample_interval: float = 86400.0) -> FoamState:
        """Integrate the coupled system for ``days`` simulated days."""
        nsteps = int(round(days * 86400.0 / self.config.atm_dt))
        next_sample = state.time
        for _ in range(nsteps):
            state = self.coupled_step(state)
            if diagnostics is not None and state.time >= next_sample:
                sst = self.ocean.sst(state.ocean)
                if diagnostics.sst_sum is None:
                    diagnostics.sst_sum = np.zeros_like(np.nan_to_num(sst))
                diagnostics.sst_sum += np.nan_to_num(sst)
                diagnostics.sst_count += 1
                diagnostics.history_sst.append(np.nan_to_num(sst).copy())
                diagnostics.history_time.append(state.time)
                next_sample += sst_sample_interval
        return state

    # ------------------------------------------------------------------
    # budgets
    # ------------------------------------------------------------------
    def global_water_inventory(self, state: FoamState) -> dict:
        """All water reservoirs (kg): atmosphere, soil, snow, rivers, ice."""
        tr = self.transform
        diag = self.dycore.diagnose(state.atm_curr)
        from repro.util.constants import GRAVITY

        col_q = np.tensordot(self.vgrid.dsigma, state.atm_curr.q, axes=(0, 0)) \
            * diag.ps / GRAVITY
        area_atm = self.coupler.atm_cell_areas
        from repro.util.constants import RHO_WATER
        return {
            "atmosphere": float(np.sum(col_q * area_atm)),
            "soil": float(np.sum(state.coupler.hydrology.soil_moisture
                                 * RHO_WATER * area_atm)),
            "snow": float(np.sum(state.coupler.hydrology.snow_depth
                                 * RHO_WATER * area_atm)),
            "rivers": self.coupler.river.total_storage() * 1000.0,
        }
