"""FOAM: the coupled ocean-atmosphere model (the paper's contribution).

Assembles the spectral atmosphere (:mod:`repro.atmosphere`), the fast ocean
(:mod:`repro.ocean`) and the overlap-grid coupler (:mod:`repro.coupler`)
into the coupled system of the paper:

* the atmosphere advances on its 30-minute step; its lower boundary
  condition is replaced by coupler-supplied surface state and fluxes
  ("the principal modification to PCCM2 ... was to replace the lower
  boundary condition routine");
* the coupler computes the turbulent fluxes on the overlap grid each
  atmosphere step, runs the land/bucket/river/ice models, and accumulates
  the ocean forcing;
* the ocean is called once per 6 simulated hours (4x per day, Figure 2)
  with the time-averaged forcing;
* radiation is recomputed twice per simulated day.

Physics and coupling are applied as adjustments to the spectral state
between dynamics steps (process splitting), with moisture carried on the
grid and transported semi-Lagrangially as in PCCM2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atmosphere.dynamics import AtmosphereState, SpectralDynamicalCore
from repro.atmosphere.physics import PhysicsSuite
from repro.atmosphere.physics.radiation import RadiationParams
from repro.atmosphere.spectral import SpectralTransform, Truncation
from repro.atmosphere.vertical import VerticalGrid
from repro.backend.kernels import fused_enabled
from repro.core.config import FoamConfig, test_config
from repro.coupler.coupler import CouplerState, FluxCoupler
from repro.coupler.seaice import SeaIceState
from repro.ocean.grid import OceanGrid, topography_by_name
from repro.ocean.model import OceanForcing, OceanModel, OceanState
from repro.ocean.slab import SlabOceanModel
from repro.perf.profiler import profile_section
from repro.util.constants import STEFAN_BOLTZMANN


@dataclass
class FoamState:
    """Complete prognostic state of the coupled system."""

    atm_prev: AtmosphereState
    atm_curr: AtmosphereState
    ocean: OceanState
    coupler: CouplerState
    time: float = 0.0


@dataclass
class CoupledDiagnostics:
    """Running diagnostics collected during an integration."""

    sst_sum: np.ndarray | None = None
    sst_count: int = 0
    precip_sum: np.ndarray | None = None
    history_sst: list = field(default_factory=list)   # monthly-ish SST means
    history_time: list = field(default_factory=list)

    def mean_sst(self) -> np.ndarray:
        if self.sst_count == 0:
            raise RuntimeError("no SST samples accumulated")
        return self.sst_sum / self.sst_count


class FoamModel:
    """The coupled FOAM system; one instance owns all three components."""

    def __init__(self, config: FoamConfig | None = None,
                 land_mask: np.ndarray | None = None,
                 depth: np.ndarray | None = None):
        self.config = config or test_config()
        cfg = self.config

        # One precision policy threads through every component constructor.
        policy = cfg.dtype_policy
        self.policy = policy
        self.transform = SpectralTransform(cfg.atm_nlat, cfg.atm_nlon,
                                           Truncation(cfg.atm_mmax),
                                           dtype=policy,
                                           backend=cfg.array_backend())
        self.vgrid = VerticalGrid.ccm_like(cfg.atm_nlev, dtype=policy)
        self.dycore = SpectralDynamicalCore(self.transform, self.vgrid,
                                            dt=cfg.atm_dt,
                                            robert=cfg.robert_filter,
                                            rotation_factor=cfg.rotation_factor)
        self.physics = PhysicsSuite(
            radiation=RadiationParams(solar_constant=cfg.solar_constant,
                                      subsolar_lon_deg=cfg.subsolar_lon_deg,
                                      co2_ppmv=cfg.co2_ppmv),
            radiation_interval=cfg.radiation_interval)

        self.ocean_grid = OceanGrid(nx=cfg.ocn_nx, ny=cfg.ocn_ny,
                                    nlev=cfg.ocn_nlev, dtype=policy,
                                    rotation_factor=cfg.rotation_factor)
        if land_mask is None or depth is None:
            land_mask, depth = topography_by_name(cfg.topography)(
                self.ocean_grid)
        if cfg.ocean_mode == "slab":
            self.ocean = SlabOceanModel(self.ocean_grid, land_mask, depth,
                                        cfg.ocean_params,
                                        mixed_layer_depth=cfg.mixed_layer_depth)
        else:
            self.ocean = OceanModel(self.ocean_grid, land_mask, depth,
                                    cfg.ocean_params)
        self.coupler = FluxCoupler(self.transform.lats, cfg.atm_nlon,
                                   self.ocean_grid.lats, cfg.ocn_nx,
                                   land_mask, rng_seed=cfg.seed + 7,
                                   dtype=policy)
        # Running ocean-forcing accumulator between ocean calls.  The
        # ensemble driver sets ``_ens_shape = (nens,)`` so the accumulator
        # (and nothing else constructed here) carries a member axis.
        self._ens_shape: tuple = ()
        self._reset_ocean_accumulator()
        # Most recent coupler bookkeeping (precip/evap/runoff totals);
        # refreshed every coupled_step so monitoring code (the scenario
        # climatology reducer) can read it without re-running physics.
        self.last_coupler_diagnostics = None

    # ------------------------------------------------------------------
    def _reset_ocean_accumulator(self) -> None:
        ny, nx = self.ocean_grid.ny, self.ocean_grid.nx
        self._acc = OceanForcing.zeros(ny, nx, dtype=self.policy.float_dtype,
                                       lead=self._ens_shape)
        self._acc_steps = 0

    def initial_state(self, seed: int | None = None,
                      perturb=None) -> FoamState:
        """Build the coupled initial state.

        ``perturb(atm)`` may mutate the atmosphere state in place before the
        leapfrog forward start — the ensemble driver injects per-member
        initial-condition noise here so the perturbation participates in the
        half-step exactly as it would in a standalone run.
        """
        seed = self.config.seed if seed is None else seed
        atm = self.dycore.initial_state("isothermal_rest", seed=seed,
                                        noise_amplitude=1e-8)
        # Moist initial atmosphere: ~60 % RH near the surface, drying rapidly
        # aloft (RH * sigma^2), hard-capped at 25 g/kg — without the vertical
        # taper the tiny saturation *pressure* aloft makes qsat explode as a
        # mixing ratio and its condensation heats the stratosphere by
        # hundreds of kelvin in one step.
        diag = self.dycore.diagnose(atm)
        from repro.util.thermo import saturation_mixing_ratio
        rh_profile = 0.6 * self.vgrid.sigma[:, None, None] ** 2
        atm.q = np.minimum(
            rh_profile * saturation_mixing_ratio(diag.temp, diag.pressure),
            0.025).astype(self.policy.float_dtype, copy=False)
        if perturb is not None:
            perturb(atm)
        ocn = self.ocean.initial_state(self.config.ocean_init)
        cpl = self.coupler.initial_state()
        if self.config.initial_ice_thickness > 0.0:
            cpl.ice = SeaIceState.uniform(~self.coupler.ocn_land_mask,
                                          self.config.initial_ice_thickness)
        prev = atm
        curr = self.dycore._forward_start(atm)
        return FoamState(atm_prev=prev, atm_curr=curr, ocean=ocn,
                         coupler=cpl, time=0.0)

    # ------------------------------------------------------------------
    # coupled-step phases
    #
    # ``coupled_step`` below recomposes these serially; the concurrent
    # driver (repro.parallel.coupled) distributes them over disjoint rank
    # pools.  Each phase runs identical array expressions in identical
    # order, so serial and concurrent float64 trajectories are bitwise
    # comparable.
    # ------------------------------------------------------------------
    def atm_diagnose(self, atm_curr: AtmosphereState):
        """Grid-space diagnostics of the current spectral state."""
        with profile_section("atmosphere"):
            return self.dycore.diagnose(atm_curr)

    def merge_surface(self, cpl_state: CouplerState, sst: np.ndarray, *,
                      t_air: np.ndarray, q_air: np.ndarray,
                      u_air: np.ndarray, v_air: np.ndarray, ps: np.ndarray):
        """Coupler phase: merged surface state + overlap-grid turbulent fluxes."""
        with profile_section("coupler"):
            surface = self.coupler.surface_state_for_atm(cpl_state, sst)
            turb = self.coupler.turbulent_fluxes(
                cpl_state, t_air=t_air, q_air=q_air, u_air=u_air,
                v_air=v_air, ps=ps, sst_celsius=sst)
        return surface, turb

    def _physics_kernel(self, diag, q, surface, external_fluxes, *,
                        time: float, rows: tuple[int, int] | None = None):
        """Column physics; ``rows=(lo, hi)`` restricts to a latitude band.

        Physics is column-local, so a band run is bitwise identical to the
        corresponding rows of a full-grid run (the atmosphere pool relies
        on this to split physics without splitting the spectral state).
        """
        cfg = self.config
        tr = self.transform
        if diag.temp.ndim == 4:
            return self._physics_kernel_batched(diag, q, surface,
                                                external_fluxes, time=time)
        if rows is None:
            return self.physics.compute(
                temp=diag.temp, q=q, u=diag.u, v=diag.v,
                pressure=diag.pressure, ps=diag.ps,
                geopotential=diag.geopotential, dsigma=self.vgrid.dsigma,
                surface=surface, dt=cfg.atm_dt, time=time,
                lats=tr.lats, lons=tr.lons, external_fluxes=external_fluxes)
        lo, hi = rows
        sl = slice(lo, hi)
        from repro.atmosphere.physics import SurfaceState
        sub = SurfaceState(t_sfc=surface.t_sfc[sl], albedo=surface.albedo[sl],
                           wetness=surface.wetness[sl], z0=surface.z0[sl],
                           ocean_mask=surface.ocean_mask[sl])
        ext = external_fluxes
        if ext is not None:
            ext = {k: v[sl] for k, v in ext.items()}
        return self.physics.compute(
            temp=diag.temp[:, sl], q=q[:, sl], u=diag.u[:, sl],
            v=diag.v[:, sl], pressure=diag.pressure[:, sl], ps=diag.ps[sl],
            geopotential=diag.geopotential[:, sl], dsigma=self.vgrid.dsigma,
            surface=sub, dt=cfg.atm_dt, time=time,
            lats=tr.lats[sl], lons=tr.lons, external_fluxes=ext)

    def _physics_kernel_batched(self, diag, q, surface, external_fluxes, *,
                                time: float):
        """Ensemble physics: fold members into the latitude axis.

        Physics is column-local, so running the batch as one wide grid of
        ``nens * nlat`` rows (with the latitude array tiled member-major) is
        bitwise identical per member to member-at-a-time calls — the same
        columns see the same elementwise arithmetic, just stacked.
        """
        from repro.atmosphere.physics import PhysicsTendencies, SurfaceState

        cfg = self.config
        tr = self.transform
        L, E, nlat, nlon = diag.temp.shape

        def fold(a):
            return a.reshape(a.shape[:-3] + (E * nlat, nlon))

        sub = SurfaceState(t_sfc=fold(surface.t_sfc),
                           albedo=fold(surface.albedo),
                           wetness=fold(surface.wetness), z0=fold(surface.z0),
                           ocean_mask=fold(surface.ocean_mask))
        ext = external_fluxes
        if ext is not None:
            ext = {k: fold(v) for k, v in ext.items()}
        phys = self.physics.compute(
            temp=fold(diag.temp), q=fold(q), u=fold(diag.u), v=fold(diag.v),
            pressure=fold(diag.pressure), ps=fold(diag.ps),
            geopotential=fold(diag.geopotential), dsigma=self.vgrid.dsigma,
            surface=sub, dt=cfg.atm_dt, time=time,
            lats=np.tile(tr.lats, E), lons=tr.lons, external_fluxes=ext)

        def unfold(a):
            if a is None:
                return None
            return a.reshape(a.shape[:-2] + (E, nlat, nlon))

        return PhysicsTendencies(
            dtdt=unfold(phys.dtdt), dqdt=unfold(phys.dqdt),
            dudt=unfold(phys.dudt), dvdt=unfold(phys.dvdt),
            precip_conv=unfold(phys.precip_conv),
            precip_strat=unfold(phys.precip_strat),
            fluxes={k: unfold(v) for k, v in phys.fluxes.items()},
            heating_sw=unfold(phys.heating_sw),
            heating_lw=unfold(phys.heating_lw))

    def _apply_tendencies_kernel(self, curr: AtmosphereState, dtdt, dudt,
                                 dvdt, dqdt) -> AtmosphereState:
        """Apply physics adjustments to the spectral state (process split)."""
        dt = self.config.atm_dt
        tr = self.transform
        new_curr = curr.copy()
        if fused_enabled():
            # One batched transform per tendency instead of a per-level
            # loop (bitwise identical per slice on the numpy path).
            new_curr.temp += dt * tr.analyze(dtdt)
            dv, dd = tr.vortdiv_from_uv(dudt, dvdt)
            new_curr.vort += dt * dv
            new_curr.div += dt * dd
        else:
            for l in range(self.vgrid.nlev):
                new_curr.temp[l] += dt * tr.analyze(dtdt[l])
                dv, dd = tr.vortdiv_from_uv(dudt[l], dvdt[l])
                new_curr.vort[l] += dt * dv
                new_curr.div[l] += dt * dd
        new_curr.q = np.maximum(curr.q + dt * dqdt, 0.0)
        return new_curr

    def atm_physics(self, diag, q, surface, external_fluxes, *,
                    time: float, rows: tuple[int, int] | None = None):
        """Physics phase with its own profiler framing (pool driver entry)."""
        with profile_section("atmosphere"):
            with profile_section("physics"):
                return self._physics_kernel(diag, q, surface, external_fluxes,
                                            time=time, rows=rows)

    def atm_apply_tendencies(self, curr: AtmosphereState, dtdt, dudt, dvdt,
                             dqdt) -> AtmosphereState:
        """Spectral-update phase with profiler framing (pool driver entry)."""
        with profile_section("atmosphere"):
            with profile_section("spectral_update"):
                return self._apply_tendencies_kernel(curr, dtdt, dudt, dvdt, dqdt)

    def atm_advance(self, state: FoamState, diag, surface, external_fluxes):
        """Full-grid physics + spectral update (the serial atmosphere phase)."""
        with profile_section("atmosphere"):
            with profile_section("physics"):
                phys = self._physics_kernel(diag, state.atm_curr.q, surface,
                                            external_fluxes, time=state.time)
            with profile_section("spectral_update"):
                new_curr = self._apply_tendencies_kernel(
                    state.atm_curr, phys.dtdt, phys.dudt, phys.dvdt, phys.dqdt)
        return new_curr, phys

    def accumulate_forcing(self, cpl_state: CouplerState, turb: dict,
                           surface, *, precip: np.ndarray,
                           sw_sfc: np.ndarray, lw_down: np.ndarray,
                           t_low1: np.ndarray, t_low2: np.ndarray,
                           dt: float):
        """Land/hydrology/rivers + ocean-forcing accumulation (coupler phase).

        ``sw_sfc``/``lw_down`` are the radiation outputs of the physics
        step; the turbulent pieces of the net surface flux come from
        ``turb["atm"]`` (the very arrays physics passed through via
        ``external_fluxes``), so the coupler rank needs no flux arrays back
        from the atmosphere pool beyond precip and radiation.
        """
        t_sfc_atm = surface.t_sfc
        net_sfc = (sw_sfc + lw_down
                   - STEFAN_BOLTZMANN * t_sfc_atm**4
                   - turb["atm"]["shf"] - turb["atm"]["lhf"])
        with profile_section("coupler"):
            with profile_section("land_rivers"):
                new_cpl, discharge_atm, cpl_diags = self.coupler.step_land_and_rivers(
                    cpl_state, precip=precip, evap=turb["atm"]["evap"],
                    t_low1=t_low1, t_low2=t_low2,
                    net_land_flux=net_sfc, dt=dt)

            # --- accumulate ocean forcing -----------------------------------
            with profile_section("regrid_merge"):
                ov = self.coupler.overlap
                rad_ocn = self.coupler.surface_radiation_to_ocean(
                    sw_sfc=sw_sfc, lw_down=lw_down, t_sfc=t_sfc_atm)
                heat_ocn = rad_ocn - turb["ocn_turb_heat_loss"]
                precip_ocn = ov.to_ocn(np.where(self.coupler._water_overlap,
                                                ov.from_atm(precip), 0.0))
                discharge_ocn = self.coupler.discharge_to_ocean_grid(discharge_atm)
                fresh = precip_ocn - turb["ocn_evap"] + discharge_ocn

                self._acc.taux += turb["ocn_taux"]
                self._acc.tauy += turb["ocn_tauy"]
                self._acc.heat_flux += heat_ocn
                self._acc.freshwater += fresh
                self._acc_steps += 1
        return new_cpl, cpl_diags

    def coupling_due(self) -> bool:
        """True when a full averaging window has accumulated (ocean is due)."""
        return self._acc_steps >= self.config.atm_steps_per_coupling

    def ocean_forcing(self, cpl_state: CouplerState, sst: np.ndarray, *,
                      t_air_bot: np.ndarray):
        """Window-mean forcing + sea-ice step; resets the accumulator."""
        cfg = self.config
        n = self._acc_steps
        forcing = OceanForcing(self._acc.taux / n, self._acc.tauy / n,
                               self._acc.heat_flux / n,
                               self._acc.freshwater / n)
        # Sea ice first: it converts persistent heat loss at the clamp
        # into ice and shields the stress.
        ov = self.coupler.overlap
        t_air_ocn = ov.to_ocn(ov.from_atm(t_air_bot))
        with profile_section("coupler"):
            with profile_section("seaice"):
                new_cpl, ice_fw = self.coupler.step_sea_ice(
                    cpl_state, sst_celsius=sst,
                    ocean_heat_loss=-forcing.heat_flux,
                    t_air_on_ocn=t_air_ocn,
                    dt=cfg.ocean_coupling_interval)
        forcing.freshwater += ice_fw
        self._reset_ocean_accumulator()
        return new_cpl, forcing

    def ocean_advance(self, ocean_state: OceanState,
                      forcing: OceanForcing) -> OceanState:
        """The ocean's coupled call (6 simulated hours under the mean forcing)."""
        with profile_section("ocean"):
            return self.ocean.step(ocean_state, forcing)

    def atm_dynamics(self, atm_prev: AtmosphereState,
                     new_curr: AtmosphereState):
        """Semi-implicit spectral dynamics step (once per coupled step)."""
        with profile_section("atmosphere"):
            with profile_section("dynamics"):
                return self.dycore.step(atm_prev, new_curr)

    # ------------------------------------------------------------------
    def coupled_step(self, state: FoamState) -> FoamState:
        """One atmosphere step of the coupled system (30 simulated minutes).

        Profiler sections follow the event-simulator's decomposition
        (``calibrate_from_profile`` depends on these names): top-level
        ``atmosphere`` / ``coupler`` / ``ocean``, with ``dynamics`` under
        ``atmosphere`` entered exactly once per coupled step.
        """
        cfg = self.config
        dt = cfg.atm_dt
        curr = state.atm_curr
        diag = self.atm_diagnose(curr)
        sst = self.ocean.sst(state.ocean)

        # --- coupler: surface state and turbulent fluxes (overlap grid) ---
        surface, turb = self.merge_surface(
            state.coupler, sst, t_air=diag.temp[-1], q_air=curr.q[-1],
            u_air=diag.u[-1], v_air=diag.v[-1], ps=diag.ps)

        # --- atmosphere physics with coupler-owned surface fluxes ----------
        new_curr, phys = self.atm_advance(state, diag, surface, turb["atm"])

        precip = phys.precip_conv + phys.precip_strat

        # --- land, hydrology, rivers + ocean-forcing accumulation -----------
        new_cpl, _cpl_diags = self.accumulate_forcing(
            state.coupler, turb, surface, precip=precip,
            sw_sfc=phys.fluxes["sw_sfc"], lw_down=phys.fluxes["lw_down"],
            t_low1=diag.temp[-1], t_low2=diag.temp[-2], dt=dt)
        self.last_coupler_diagnostics = _cpl_diags

        new_ocean = state.ocean
        new_time = state.time + dt

        # --- ocean call (every 6 simulated hours) ---------------------------
        if self.coupling_due():
            new_cpl, forcing = self.ocean_forcing(new_cpl, sst,
                                                  t_air_bot=diag.temp[-1])
            new_ocean = self.ocean_advance(state.ocean, forcing)

        # --- atmosphere dynamics step ----------------------------------------
        new_prev, new_next = self.atm_dynamics(state.atm_prev, new_curr)
        return FoamState(atm_prev=new_prev, atm_curr=new_next,
                         ocean=new_ocean, coupler=new_cpl, time=new_time)

    # ------------------------------------------------------------------
    def run_days(self, state: FoamState, days: float,
                 diagnostics: CoupledDiagnostics | None = None,
                 sst_sample_interval: float = 86400.0,
                 observers: tuple = ()) -> FoamState:
        """Integrate the coupled system for ``days`` simulated days.

        Delegates to the run harness's single stepping loop
        (:func:`repro.runs.drive_steps`); ``diagnostics`` rides along as
        the legacy SST-sampling observer and ``observers`` attaches any
        further :class:`~repro.runs.StepObserver` s (history,
        checkpoints).
        """
        from repro.runs.harness import drive_steps
        from repro.runs.observers import CoupledDiagnosticsObserver

        nsteps = int(round(days * 86400.0 / self.config.atm_dt))
        obs = tuple(observers)
        if diagnostics is not None:
            obs = (CoupledDiagnosticsObserver(diagnostics,
                                              sst_sample_interval),) + obs
        return drive_steps(self, state, nsteps, obs)

    # ------------------------------------------------------------------
    # budgets
    # ------------------------------------------------------------------
    def global_water_inventory(self, state: FoamState) -> dict:
        """All water reservoirs (kg): atmosphere, soil, snow, rivers, ice."""
        tr = self.transform
        diag = self.dycore.diagnose(state.atm_curr)
        from repro.util.constants import GRAVITY

        col_q = np.tensordot(self.vgrid.dsigma, state.atm_curr.q, axes=(0, 0)) \
            * diag.ps / GRAVITY
        area_atm = self.coupler.atm_cell_areas
        from repro.util.constants import RHO_WATER
        return {
            "atmosphere": float(np.sum(col_q * area_atm)),
            "soil": float(np.sum(state.coupler.hydrology.soil_moisture
                                 * RHO_WATER * area_atm)),
            "snow": float(np.sum(state.coupler.hydrology.snow_depth
                                 * RHO_WATER * area_atm)),
            "rivers": self.coupler.river.total_storage() * 1000.0,
        }
