"""Batched ensemble execution: N coupled members as one leading array axis.

The ROADMAP's serving target is mostly the *same* model run under perturbed
initial conditions and parameter knobs, so the biggest throughput lever is
amortizing every Legendre matmul, semi-implicit solve, and physics column
across an ensemble batch instead of looping N sequential runs (the
batch-first design NeuralGCM demonstrates for a GCM core).

Layout convention: the member axis sits directly after the level axis —
third from last — everywhere:

* spectral state ``(L, E, nm, nk)``, surface spectral ``(E, nm, nk)``;
* grid fields ``(L, E, nlat, nlon)``, surface grid ``(E, nlat, nlon)``;
* ocean 3-D ``(L, E, ny, nx)``, 2-D ``(E, ny, nx)``;
* soil ``(NSOIL, E, nlat, nlon)``.

That keeps every level contraction (``tensordot`` over axis 0) and every
horizontal kernel (last two axes) shape-generic, and makes the member slice
``[:, e]`` / ``[e]`` a view.

Correctness contract (regression-tested in ``tests/test_ensemble.py``): a
zero-perturbation batch of N members is **bitwise float64-identical** per
member to N independent serial runs.  Every batched kernel therefore runs
the identical operation sequence per member — see the per-member loops in
``SpectralDynamicalCore._dsig_dot`` and the river routing for the two spots
where naive whole-batch contractions would reorder accumulations.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.atmosphere.dynamics import AtmosphereState
from repro.core.config import FoamConfig, test_config
from repro.core.foam import CoupledDiagnostics, FoamModel, FoamState
from repro.coupler.coupler import CouplerState
from repro.coupler.hydrology import HydrologyState
from repro.coupler.land import LandState
from repro.coupler.seaice import SeaIceState
from repro.ocean.model import OceanState

__all__ = ["EnsembleConfig", "FoamEnsemble", "promote_member_values",
           "stack_members", "member_state"]


def promote_member_values(value, nens: int, dtype) -> float | np.ndarray:
    """Promote a scalar config knob to a broadcastable per-member array.

    Scalars (python numbers and 0-d arrays) collapse to python floats so the
    shared-knob path stays operation-identical to the serial model — and so
    a 0-d float64 array can never upcast float32 fields.  Length-``nens``
    sequences become ``(nens, 1, 1)`` arrays of the policy float dtype,
    shaped to broadcast against both grid ``(..., E, nlat, nlon)`` and
    spectral ``(..., E, nm, nk)`` member layouts.
    """
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return float(arr)
    if arr.shape != (nens,):
        raise ValueError(f"per-member value must be a scalar or a length-"
                         f"{nens} sequence, got shape {arr.shape}")
    return arr.reshape(nens, 1, 1)


# ----------------------------------------------------------------------
# state stacking / unstacking
# ----------------------------------------------------------------------
def _stack_atm(states: Sequence[AtmosphereState]) -> AtmosphereState:
    return AtmosphereState(
        vort=np.stack([st.vort for st in states], axis=1),
        div=np.stack([st.div for st in states], axis=1),
        temp=np.stack([st.temp for st in states], axis=1),
        lnps=np.stack([st.lnps for st in states], axis=0),
        q=np.stack([st.q for st in states], axis=1),
        time=states[0].time)


def _stack_ocn(states: Sequence[OceanState]) -> OceanState:
    return OceanState(
        u=np.stack([st.u for st in states], axis=1),
        v=np.stack([st.v for st in states], axis=1),
        temp=np.stack([st.temp for st in states], axis=1),
        salt=np.stack([st.salt for st in states], axis=1),
        eta=np.stack([st.eta for st in states], axis=0),
        ubar=np.stack([st.ubar for st in states], axis=0),
        vbar=np.stack([st.vbar for st in states], axis=0),
        time=states[0].time)


def _stack_cpl(states: Sequence[CouplerState]) -> CouplerState:
    river = None
    if states[0].river_volume is not None:
        river = np.stack([st.river_volume for st in states], axis=0)
    return CouplerState(
        land=LandState(soil_temp=np.stack(
            [st.land.soil_temp for st in states], axis=1)),
        hydrology=HydrologyState(
            soil_moisture=np.stack(
                [st.hydrology.soil_moisture for st in states], axis=0),
            snow_depth=np.stack(
                [st.hydrology.snow_depth for st in states], axis=0)),
        ice=SeaIceState(
            thickness=np.stack([st.ice.thickness for st in states], axis=0),
            surface_temp=np.stack(
                [st.ice.surface_temp for st in states], axis=0)),
        river_volume=river,
        time=states[0].time)


def stack_members(members: Sequence[FoamState]) -> FoamState:
    """Stack per-member serial states into one batched :class:`FoamState`.

    Level-major arrays gain the member axis at position 1 (after level);
    everything else leads with it.  All members must share ``time``.
    """
    if not members:
        raise ValueError("need at least one member state")
    return FoamState(
        atm_prev=_stack_atm([mm.atm_prev for mm in members]),
        atm_curr=_stack_atm([mm.atm_curr for mm in members]),
        ocean=_stack_ocn([mm.ocean for mm in members]),
        coupler=_stack_cpl([mm.coupler for mm in members]),
        time=members[0].time)


def member_state(state: FoamState, e: int) -> FoamState:
    """Extract member ``e`` of a batched state as an independent serial state."""
    def atm(a: AtmosphereState) -> AtmosphereState:
        return AtmosphereState(vort=a.vort[:, e].copy(), div=a.div[:, e].copy(),
                               temp=a.temp[:, e].copy(), lnps=a.lnps[e].copy(),
                               q=a.q[:, e].copy(), time=a.time)

    o = state.ocean
    ocn = OceanState(u=o.u[:, e].copy(), v=o.v[:, e].copy(),
                     temp=o.temp[:, e].copy(), salt=o.salt[:, e].copy(),
                     eta=o.eta[e].copy(), ubar=o.ubar[e].copy(),
                     vbar=o.vbar[e].copy(), time=o.time)
    c = state.coupler
    cpl = CouplerState(
        land=LandState(soil_temp=c.land.soil_temp[:, e].copy()),
        hydrology=HydrologyState(
            soil_moisture=c.hydrology.soil_moisture[e].copy(),
            snow_depth=c.hydrology.snow_depth[e].copy()),
        ice=SeaIceState(thickness=c.ice.thickness[e].copy(),
                        surface_temp=c.ice.surface_temp[e].copy()),
        river_volume=(None if c.river_volume is None
                      else c.river_volume[e].copy()),
        time=c.time)
    return FoamState(atm_prev=atm(state.atm_prev), atm_curr=atm(state.atm_curr),
                     ocean=ocn, coupler=cpl, time=state.time)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
@dataclass
class EnsembleConfig:
    """Configuration of a batched member ensemble.

    ``robert_filter`` / ``sst_clamp`` may be scalars (shared by all members)
    or length-``nens`` sequences (promoted to ``(nens, 1, 1)`` broadcast
    arrays).  ``ic_perturbation`` is the amplitude of per-member rotational
    spectral noise added to the initial vorticity; 0 makes every member
    bitwise-identical.
    """

    nens: int = 4
    base: FoamConfig | None = None
    ic_perturbation: float = 0.0
    perturb_seed: int = 100
    robert_filter: float | Sequence[float] | None = None
    sst_clamp: float | Sequence[float] | None = None


class FoamEnsemble:
    """N coupled FOAM members advanced as one batch through ``coupled_step``.

    One :class:`FoamModel` instance owns the (member-shape-aware) components;
    the batched state carries the member axis and every hot kernel operates
    on all members at once, reusing the workspace arena with ensemble-shaped
    buffers.
    """

    def __init__(self, config: EnsembleConfig | None = None, **kwargs):
        self.config = config if config is not None else EnsembleConfig(**kwargs)
        cfg = self.config
        self.nens = int(cfg.nens)
        if self.nens < 1:
            raise ValueError(f"nens must be >= 1, got {cfg.nens}")
        base = cfg.base if cfg.base is not None else test_config()
        self.model = FoamModel(base)
        self.model._ens_shape = (self.nens,)
        self.model._reset_ocean_accumulator()
        fdt = self.model.policy.float_dtype

        robert = (base.robert_filter if cfg.robert_filter is None
                  else cfg.robert_filter)
        self._robert = promote_member_values(robert, self.nens, fdt)
        self.model.dycore.robert = self._robert

        clamp = (self.model.ocean.params.sst_clamp if cfg.sst_clamp is None
                 else cfg.sst_clamp)
        self._sst_clamp = promote_member_values(clamp, self.nens, fdt)
        if isinstance(self._sst_clamp, np.ndarray):
            # Replace rather than mutate: ``base.ocean_params`` may be shared
            # with the caller's config object.
            self.model.ocean.params = dataclasses.replace(
                self.model.ocean.params, sst_clamp=self._sst_clamp)

    # ------------------------------------------------------------------
    def _member_scalar(self, promoted, e: int) -> float:
        if isinstance(promoted, np.ndarray):
            return float(promoted[e, 0, 0])
        return promoted

    def member_config(self, e: int) -> FoamConfig:
        """The serial :class:`FoamConfig` equivalent to batch member ``e``.

        Used by the equivalence tests and the sequential benchmark baseline:
        a serial model built from this config must reproduce member ``e``
        bitwise (at zero perturbation).
        """
        base = self.model.config
        params = dataclasses.replace(
            base.ocean_params,
            sst_clamp=self._member_scalar(self._sst_clamp, e))
        return dataclasses.replace(
            base, robert_filter=self._member_scalar(self._robert, e),
            ocean_params=params)

    # ------------------------------------------------------------------
    def initial_state(self, seed: int | None = None) -> FoamState:
        """Batched initial state: N serial member states, stacked.

        Members are built one at a time with their *serial* per-member knobs
        (the leapfrog forward start runs inside), then stacked along the
        member axis — so member ``e`` starts from exactly the state a
        standalone run with ``member_config(e)`` would.
        """
        m = self.model
        base_seed = m.config.seed if seed is None else seed
        amp = float(self.config.ic_perturbation)
        saved_robert = m.dycore.robert
        members = []
        try:
            for e in range(self.nens):
                m.dycore.robert = self._member_scalar(self._robert, e)
                perturb = self._ic_perturbation(e, amp) if amp > 0 else None
                members.append(m.initial_state(seed=base_seed, perturb=perturb))
        finally:
            m.dycore.robert = saved_robert
        return stack_members(members)

    def _ic_perturbation(self, e: int, amplitude: float):
        cdt = self.model.policy.complex_dtype
        seed = self.config.perturb_seed + e

        def perturb(atm: AtmosphereState) -> None:
            rng = np.random.default_rng(seed)
            noise = (rng.normal(size=atm.vort.shape)
                     + 1j * rng.normal(size=atm.vort.shape)) * amplitude
            noise[:, 0, :] = noise[:, 0, :].real    # zonal coeffs stay real
            atm.vort += noise.astype(cdt)

        return perturb

    # ------------------------------------------------------------------
    def step(self, state: FoamState) -> FoamState:
        """Advance all members by one coupled (atmosphere) step."""
        return self.model.coupled_step(state)

    def run_days(self, state: FoamState, days: float,
                 diagnostics: CoupledDiagnostics | None = None,
                 sst_sample_interval: float = 86400.0,
                 observers: tuple = ()) -> FoamState:
        """Integrate the whole batch for ``days`` simulated days.

        Runs the same harness stepping loop as the serial model;
        observers see the *batched* state, so history snapshots carry the
        member axis natively.
        """
        return self.model.run_days(state, days, diagnostics=diagnostics,
                                   sst_sample_interval=sst_sample_interval,
                                   observers=observers)

    def member_state(self, state: FoamState, e: int) -> FoamState:
        """Member ``e`` of a batched state as an independent serial state."""
        if not 0 <= e < self.nens:
            raise IndexError(f"member {e} out of range for nens={self.nens}")
        return member_state(state, e)
