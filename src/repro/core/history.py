"""History and restart I/O for FOAM runs.

The paper notes the production bottleneck of "large output files" (they ran
at 2,000x real time instead of 4,000x partly because of output); this module
keeps the format deliberately simple — compressed ``.npz`` bundles — while
streaming: :class:`HistoryWriter` holds at most ``flush_every`` snapshots in
memory and rolls them to disk, so an arbitrarily long run writes many small
files instead of growing one unbounded buffer.  Snapshots pass through with
their dtype and shape intact, so batched-ensemble fields carry their leading
member axis natively — one file holds ``(T, nens, ny, nx)``, not N
member-at-a-time copies.

Restart checkpoints are versioned and stamped with the producing
configuration's content hash (:meth:`FoamConfig.content_hash`), so the run
harness can refuse a resume onto a different world instead of silently
diverging.  ``save_restart``/``load_restart`` remain the compact state-only
API; :func:`load_checkpoint` additionally returns the stamp metadata.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.atmosphere.dynamics import AtmosphereState
from repro.core.foam import FoamState
from repro.coupler.coupler import CouplerState
from repro.coupler.hydrology import HydrologyState
from repro.coupler.land import LandState
from repro.coupler.seaice import SeaIceState
from repro.ocean.model import OceanState

#: Current on-disk checkpoint format.  Version 1 files (pre-stamp, with
#: ``river_volume=None`` silently zero-filled) still load.
CHECKPOINT_FORMAT_VERSION = 2


class HistoryWriter:
    """Accumulates named snapshots and streams them to rolling npz files.

    ``flush_every`` bounds the buffer: when that many snapshots have been
    recorded, :meth:`record` flushes automatically, so memory stays
    O(flush_every * snapshot) no matter how long the run is.  Fields keep
    the dtype and shape of their first snapshot (enforced — a shape or
    dtype drift mid-run corrupts the concatenated file) and may carry any
    leading batch axes: the batched ensemble records ``(nens, ny, nx)``
    fields and the files hold ``(T, nens, ny, nx)`` blocks natively.
    """

    def __init__(self, directory: str | Path, prefix: str = "history",
                 flush_every: int | None = None):
        if flush_every is not None and flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.flush_every = flush_every
        self._buffer: dict[str, list[np.ndarray]] = {}
        self._times: list[float] = []
        # (shape, dtype) per field, fixed at first record for the writer's
        # whole life — files from one writer must concatenate cleanly.
        self._template: dict[str, tuple[tuple, np.dtype]] = {}
        self.files_written: list[Path] = []
        # Resume-friendly numbering: never overwrite a previous leg's files
        # when a resumed run streams into the same directory.
        self._next_file_index = len(list(self.directory.glob(
            f"{self.prefix}_[0-9][0-9][0-9][0-9].npz")))
        self.bytes_written = 0
        self.snapshots_recorded = 0

    # ------------------------------------------------------------------
    @property
    def buffered_snapshots(self) -> int:
        return len(self._times)

    @property
    def nbytes_buffered(self) -> int:
        return sum(arr.nbytes for snaps in self._buffer.values()
                   for arr in snaps)

    def record(self, time: float, **fields: np.ndarray) -> Path | None:
        """Append one snapshot; auto-flushes when the buffer is full.

        Returns the path written when this record triggered a rolling
        flush, else None.
        """
        if not fields:
            raise ValueError("a history snapshot needs at least one field")
        if self._template and set(fields) != set(self._template):
            raise ValueError(
                f"inconsistent history fields: {sorted(fields)} vs "
                f"{sorted(self._template)}")
        arrays = {}
        for name, value in fields.items():
            arr = np.asarray(value)
            want = self._template.get(name)
            if want is not None and (arr.shape, arr.dtype) != want:
                raise ValueError(
                    f"history field {name!r} changed shape/dtype: "
                    f"got {arr.shape}/{arr.dtype}, expected "
                    f"{want[0]}/{want[1]}")
            arrays[name] = arr
        for name, arr in arrays.items():
            self._template.setdefault(name, (arr.shape, arr.dtype))
            self._buffer.setdefault(name, []).append(arr)
        self._times.append(float(time))
        self.snapshots_recorded += 1
        if self.flush_every and len(self._times) >= self.flush_every:
            return self.flush()
        return None

    def flush(self) -> Path | None:
        """Write buffered snapshots to one compressed file; clears the buffer."""
        if not self._times:
            return None
        payload = {name: np.stack(snaps)
                   for name, snaps in self._buffer.items()}
        payload["time"] = np.asarray(self._times)
        path = self.directory / f"{self.prefix}_{self._next_file_index:04d}.npz"
        self._next_file_index += 1
        np.savez_compressed(path, **payload)
        self.files_written.append(path)
        self.bytes_written += path.stat().st_size
        self._buffer.clear()
        self._times.clear()
        return path

    def close(self) -> Path | None:
        """Flush whatever is still buffered (idempotent)."""
        return self.flush()


def load_history(paths) -> dict[str, np.ndarray]:
    """Concatenate one or more history files along the time axis.

    Files may be given in any order — chunks are sorted by their first
    timestamp before concatenation, so a rolling-flush run loads
    identically however the paths were globbed.  Every file must carry
    the same field set; a mismatch raises instead of returning a dict
    whose arrays silently cover different time ranges.
    """
    paths = [Path(p) for p in
             (paths if isinstance(paths, (list, tuple)) else [paths])]
    if not paths:
        raise ValueError("no history files given")
    chunks: list[tuple[float, dict[str, np.ndarray]]] = []
    fields: set[str] | None = None
    for p in paths:
        with np.load(p) as data:
            chunk = {name: data[name] for name in data.files}
        if fields is None:
            fields = set(chunk)
        elif set(chunk) != fields:
            raise ValueError(
                f"inconsistent history files: {p} has fields "
                f"{sorted(chunk)}, expected {sorted(fields)}")
        first = float(chunk["time"][0]) if "time" in chunk and len(
            chunk["time"]) else 0.0
        chunks.append((first, chunk))
    chunks.sort(key=lambda item: item[0])
    return {name: np.concatenate([chunk[name] for _, chunk in chunks])
            for name in sorted(fields)}


# ----------------------------------------------------------------- restarts
def save_restart(path: str | Path, state: FoamState, *,
                 config=None, meta: dict | None = None) -> Path:
    """Serialize a full coupled state (bit-exact round trip).

    ``config`` (a :class:`~repro.core.config.FoamConfig`) stamps the file
    with the producing configuration's content hash and JSON so a resume
    can validate compatibility; ``meta`` attaches arbitrary
    JSON-serializable run metadata (mode, nens, scenario, run key).
    Batched (ensemble) states serialize unchanged — every array simply
    carries its member axis.  A ``river_volume`` of None round-trips as
    None (format v2); it is never zero-filled.
    """
    path = Path(path)
    a_p, a_c = state.atm_prev, state.atm_curr
    o = state.ocean
    c = state.coupler
    payload = dict(
        format_version=CHECKPOINT_FORMAT_VERSION,
        time=state.time,
        ap_vort=a_p.vort, ap_div=a_p.div, ap_temp=a_p.temp,
        ap_lnps=a_p.lnps, ap_q=a_p.q, ap_time=a_p.time,
        ac_vort=a_c.vort, ac_div=a_c.div, ac_temp=a_c.temp,
        ac_lnps=a_c.lnps, ac_q=a_c.q, ac_time=a_c.time,
        o_u=o.u, o_v=o.v, o_temp=o.temp, o_salt=o.salt,
        o_eta=o.eta, o_ubar=o.ubar, o_vbar=o.vbar, o_time=o.time,
        c_soil_temp=c.land.soil_temp,
        c_soil_moisture=c.hydrology.soil_moisture,
        c_snow=c.hydrology.snow_depth,
        c_ice_h=c.ice.thickness, c_ice_ts=c.ice.surface_temp,
        c_river_present=c.river_volume is not None,
        c_time=c.time)
    if c.river_volume is not None:
        payload["c_river"] = c.river_volume
    if config is not None:
        payload["config_hash"] = config.content_hash()
        payload["config_json"] = json.dumps(config.to_dict(), sort_keys=True)
    if meta is not None:
        payload["meta_json"] = json.dumps(meta, sort_keys=True)
    np.savez_compressed(path, **payload)
    return path


def _state_from_npz(d) -> FoamState:
    atm_prev = AtmosphereState(d["ap_vort"], d["ap_div"], d["ap_temp"],
                               d["ap_lnps"], d["ap_q"], float(d["ap_time"]))
    atm_curr = AtmosphereState(d["ac_vort"], d["ac_div"], d["ac_temp"],
                               d["ac_lnps"], d["ac_q"], float(d["ac_time"]))
    ocean = OceanState(d["o_u"], d["o_v"], d["o_temp"], d["o_salt"],
                       d["o_eta"], d["o_ubar"], d["o_vbar"],
                       float(d["o_time"]))
    if "c_river_present" in d.files:
        river = d["c_river"] if bool(d["c_river_present"]) else None
    else:
        river = d["c_river"]           # v1 files: None was zero-filled
    coupler = CouplerState(
        land=LandState(d["c_soil_temp"]),
        hydrology=HydrologyState(d["c_soil_moisture"], d["c_snow"]),
        ice=SeaIceState(d["c_ice_h"], d["c_ice_ts"]),
        river_volume=river,
        time=float(d["c_time"]))
    return FoamState(atm_prev=atm_prev, atm_curr=atm_curr, ocean=ocean,
                     coupler=coupler, time=float(d["time"]))


def load_restart(path: str | Path) -> FoamState:
    """Inverse of :func:`save_restart` (state only; stamps ignored)."""
    with np.load(path) as d:
        return _state_from_npz(d)


def load_checkpoint(path: str | Path) -> tuple[FoamState, dict]:
    """Load a checkpoint and its stamp metadata.

    Returns ``(state, meta)`` where ``meta`` always has ``format_version``
    (1 for pre-stamp files) and, when stamped, ``config_hash``, ``config``
    (the producing config as a dict) and whatever :func:`save_restart` was
    given as ``meta``.
    """
    with np.load(path) as d:
        state = _state_from_npz(d)
        meta: dict = {"format_version": (int(d["format_version"])
                                         if "format_version" in d.files else 1)}
        if "config_hash" in d.files:
            meta["config_hash"] = str(d["config_hash"])
        if "config_json" in d.files:
            meta["config"] = json.loads(str(d["config_json"]))
        if "meta_json" in d.files:
            meta.update(json.loads(str(d["meta_json"])))
    return state, meta
