"""History and restart I/O for FOAM runs.

The paper notes the production bottleneck of "large output files" (they ran
at 2,000x real time instead of 4,000x partly because of output); this module
keeps the format deliberately simple — compressed ``.npz`` bundles — with a
:class:`HistoryWriter` that accumulates periodic snapshots and restart
helpers that round-trip the full coupled state bit-exactly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.atmosphere.dynamics import AtmosphereState
from repro.core.foam import FoamState
from repro.coupler.coupler import CouplerState
from repro.coupler.hydrology import HydrologyState
from repro.coupler.land import LandState
from repro.coupler.seaice import SeaIceState
from repro.ocean.model import OceanState


class HistoryWriter:
    """Accumulates named 2-D snapshots and writes one npz per flush."""

    def __init__(self, directory: str | Path, prefix: str = "history"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self._buffer: dict[str, list[np.ndarray]] = {}
        self._times: list[float] = []
        self.files_written: list[Path] = []

    def record(self, time: float, **fields: np.ndarray) -> None:
        """Append one snapshot; field sets must be consistent across calls."""
        if self._buffer and set(fields) != set(self._buffer):
            raise ValueError(
                f"inconsistent history fields: {sorted(fields)} vs "
                f"{sorted(self._buffer)}")
        for name, arr in fields.items():
            self._buffer.setdefault(name, []).append(np.asarray(arr))
        self._times.append(time)

    def flush(self) -> Path | None:
        """Write buffered snapshots to one compressed file; clears the buffer."""
        if not self._times:
            return None
        payload = {name: np.stack(snaps) for name, snaps in self._buffer.items()}
        payload["time"] = np.asarray(self._times)
        path = self.directory / f"{self.prefix}_{len(self.files_written):04d}.npz"
        np.savez_compressed(path, **payload)
        self.files_written.append(path)
        self._buffer.clear()
        self._times.clear()
        return path


def load_history(paths) -> dict[str, np.ndarray]:
    """Concatenate one or more history files along the time axis."""
    paths = [Path(p) for p in (paths if isinstance(paths, (list, tuple)) else [paths])]
    chunks: dict[str, list[np.ndarray]] = {}
    for p in paths:
        with np.load(p) as data:
            for name in data.files:
                chunks.setdefault(name, []).append(data[name])
    return {name: np.concatenate(parts) for name, parts in chunks.items()}


# ----------------------------------------------------------------- restarts
def save_restart(path: str | Path, state: FoamState) -> Path:
    """Serialize a full coupled state (bit-exact round trip)."""
    path = Path(path)
    a_p, a_c = state.atm_prev, state.atm_curr
    o = state.ocean
    c = state.coupler
    np.savez_compressed(
        path,
        time=state.time,
        ap_vort=a_p.vort, ap_div=a_p.div, ap_temp=a_p.temp,
        ap_lnps=a_p.lnps, ap_q=a_p.q, ap_time=a_p.time,
        ac_vort=a_c.vort, ac_div=a_c.div, ac_temp=a_c.temp,
        ac_lnps=a_c.lnps, ac_q=a_c.q, ac_time=a_c.time,
        o_u=o.u, o_v=o.v, o_temp=o.temp, o_salt=o.salt,
        o_eta=o.eta, o_ubar=o.ubar, o_vbar=o.vbar, o_time=o.time,
        c_soil_temp=c.land.soil_temp,
        c_soil_moisture=c.hydrology.soil_moisture,
        c_snow=c.hydrology.snow_depth,
        c_ice_h=c.ice.thickness, c_ice_ts=c.ice.surface_temp,
        c_river=(c.river_volume if c.river_volume is not None
                 else np.zeros_like(c.hydrology.soil_moisture)),
        c_time=c.time)
    return path


def load_restart(path: str | Path) -> FoamState:
    """Inverse of :func:`save_restart`."""
    with np.load(path) as d:
        atm_prev = AtmosphereState(d["ap_vort"], d["ap_div"], d["ap_temp"],
                                   d["ap_lnps"], d["ap_q"], float(d["ap_time"]))
        atm_curr = AtmosphereState(d["ac_vort"], d["ac_div"], d["ac_temp"],
                                   d["ac_lnps"], d["ac_q"], float(d["ac_time"]))
        ocean = OceanState(d["o_u"], d["o_v"], d["o_temp"], d["o_salt"],
                           d["o_eta"], d["o_ubar"], d["o_vbar"],
                           float(d["o_time"]))
        coupler = CouplerState(
            land=LandState(d["c_soil_temp"]),
            hydrology=HydrologyState(d["c_soil_moisture"], d["c_snow"]),
            ice=SeaIceState(d["c_ice_h"], d["c_ice_ts"]),
            river_volume=d["c_river"],
            time=float(d["c_time"]))
        return FoamState(atm_prev=atm_prev, atm_curr=atm_curr, ocean=ocean,
                         coupler=coupler, time=float(d["time"]))
