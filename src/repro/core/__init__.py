"""FOAM core: the coupled model driver, configuration, and history I/O."""

from repro.core.config import FoamConfig, paper_config, small_config, test_config
from repro.core.foam import CoupledDiagnostics, FoamModel, FoamState
from repro.core.history import HistoryWriter, load_history, load_restart, save_restart

__all__ = [
    "FoamConfig", "paper_config", "small_config", "test_config",
    "CoupledDiagnostics", "FoamModel", "FoamState",
    "HistoryWriter", "load_history", "save_restart", "load_restart",
]
