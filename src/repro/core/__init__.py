"""FOAM core: the coupled model driver, configuration, and history I/O."""

from repro.core.config import FoamConfig, paper_config, small_config, test_config
from repro.core.ensemble import (EnsembleConfig, FoamEnsemble, member_state,
                                 stack_members)
from repro.core.foam import CoupledDiagnostics, FoamModel, FoamState
from repro.core.history import (
    HistoryWriter,
    load_checkpoint,
    load_history,
    load_restart,
    save_restart,
)

__all__ = [
    "FoamConfig", "paper_config", "small_config", "test_config",
    "CoupledDiagnostics", "FoamModel", "FoamState",
    "EnsembleConfig", "FoamEnsemble", "stack_members", "member_state",
    "HistoryWriter", "load_history", "save_restart", "load_restart",
    "load_checkpoint",
]
