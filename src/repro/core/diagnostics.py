"""Climate diagnostics for FOAM runs.

The quantities a coupled-model paper's evaluation section lives on:
meridional heat transport, top-of-atmosphere and surface energy budgets,
ENSO-style SST indices, ice extent, and the hydrological-cycle ledger.
All functions are pure (state in, numbers out) so they can run on live
states or on reloaded history files.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import (
    CP_SEAWATER,
    RHO_SEAWATER,
    STEFAN_BOLTZMANN,
)


def nino3_index(sst: np.ndarray, lats: np.ndarray, lons: np.ndarray,
                mask: np.ndarray) -> float:
    """Mean SST anomaly-box value over the NINO3 region (5S-5N, 210-270E).

    Returned as the plain box mean (deg C); subtract a climatology of the
    same quantity to get the index proper.
    """
    lat_d = np.degrees(lats)[:, None]
    lon_d = np.degrees(lons)[None, :]
    box = (np.abs(lat_d) <= 5.0) & (lon_d >= 210.0) & (lon_d <= 270.0) & mask
    if not box.any():
        raise ValueError("NINO3 box contains no ocean points on this grid")
    return float(np.nanmean(np.where(box, sst, np.nan)))


def ice_area(ice_mask: np.ndarray, cell_areas: np.ndarray) -> float:
    """Total sea-ice covered area (m^2)."""
    return float(np.sum(np.where(ice_mask, cell_areas, 0.0)))


def ocean_heat_content(temp: np.ndarray, dz3d: np.ndarray,
                       cell_areas: np.ndarray) -> float:
    """Total ocean heat content relative to 0 C (J)."""
    vol = dz3d * cell_areas[None]
    return float(RHO_SEAWATER * CP_SEAWATER * np.sum(temp * vol))


def meridional_heat_transport(heat_flux_into_ocean: np.ndarray,
                              lats: np.ndarray,
                              cell_areas: np.ndarray,
                              mask: np.ndarray) -> np.ndarray:
    """Implied northward ocean heat transport (W) at each latitude row edge.

    In equilibrium the ocean must carry poleward whatever the surface flux
    pattern puts in at low latitudes and takes out at high latitudes:
    T(phi) = -integral from phi to the north pole of the net surface flux.
    Returns (nlat+1,) transports at row edges (zero at both ends if the
    global flux integrates to zero; the residual is reported at the ends
    otherwise).
    """
    row_flux = np.sum(np.where(mask, heat_flux_into_ocean * cell_areas, 0.0),
                      axis=-1)
    transport = np.zeros(len(lats) + 1)
    # Integrate from the south pole northward: T_edge[j+1] = T_edge[j] + F_j.
    transport[1:] = np.cumsum(row_flux)
    return transport


def toa_energy_balance(fluxes: dict, weights: np.ndarray) -> dict:
    """Global TOA budget from a physics flux dict (area weights sum to 1)."""
    olr = float(np.sum(fluxes["olr"] * weights))
    reflected = float(np.sum(fluxes["sw_toa_reflected"] * weights))
    return {"olr": olr, "sw_reflected": reflected}


def surface_energy_balance(fluxes: dict, t_sfc: np.ndarray,
                           weights: np.ndarray) -> dict:
    """Global surface budget: SW in, LW net, sensible, latent (W/m^2)."""
    sw = float(np.sum(fluxes["sw_sfc"] * weights))
    lw_net = float(np.sum(
        (STEFAN_BOLTZMANN * t_sfc**4 - fluxes["lw_down"]) * weights))
    sh = float(np.sum(fluxes["shf"] * weights))
    lh = float(np.sum(fluxes["lhf"] * weights))
    return {"sw_absorbed": sw, "lw_net_up": lw_net, "sensible": sh,
            "latent": lh, "net_into_surface": sw - lw_net - sh - lh}


def hydrological_ledger(model, state) -> dict:
    """P, E, runoff, river discharge, and the implied imbalance (kg/s).

    Uses the coupler's most recent diagnostics surfaces; intended for
    monitoring the closed hydrological cycle during long runs.
    """
    inv = model.global_water_inventory(state)
    total = sum(inv.values())
    return {**inv, "total": total}


def equator_pole_gradient(sst: np.ndarray, lats: np.ndarray,
                          mask: np.ndarray) -> float:
    """Tropical-mean minus polar-mean SST (deg C): the first-order climate."""
    lat_d = np.degrees(lats)
    trop = np.abs(lat_d) < 15.0
    pole = np.abs(lat_d) > 55.0
    t_trop = np.nanmean(np.where(mask[trop], sst[trop], np.nan))
    t_pole = np.nanmean(np.where(mask[pole], sst[pole], np.nan))
    return float(t_trop - t_pole)
