"""Shared utilities: physical constants, thermodynamic helpers, validation."""

from repro.util import constants
from repro.util.thermo import (
    dewpoint,
    moist_static_energy,
    potential_temperature,
    saturation_mixing_ratio,
    saturation_vapor_pressure,
    temperature_from_theta,
    virtual_temperature,
)
from repro.util.validation import (
    require_finite,
    require_in_range,
    require_positive,
    require_shape,
)

__all__ = [
    "constants",
    "saturation_vapor_pressure",
    "saturation_mixing_ratio",
    "potential_temperature",
    "temperature_from_theta",
    "virtual_temperature",
    "moist_static_energy",
    "dewpoint",
    "require_positive",
    "require_shape",
    "require_in_range",
    "require_finite",
]
