"""Shared utilities: physical constants, thermodynamic helpers, validation."""

from repro.util import constants
from repro.util.thermo import (
    saturation_vapor_pressure,
    saturation_mixing_ratio,
    potential_temperature,
    temperature_from_theta,
    virtual_temperature,
    moist_static_energy,
    dewpoint,
)
from repro.util.validation import (
    require_positive,
    require_shape,
    require_in_range,
    require_finite,
)

__all__ = [
    "constants",
    "saturation_vapor_pressure",
    "saturation_mixing_ratio",
    "potential_temperature",
    "temperature_from_theta",
    "virtual_temperature",
    "moist_static_energy",
    "dewpoint",
    "require_positive",
    "require_shape",
    "require_in_range",
    "require_finite",
]
