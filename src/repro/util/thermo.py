"""Moist thermodynamics helpers used by the atmosphere physics and coupler.

All functions are vectorized over NumPy arrays and accept scalars.  The
saturation vapor pressure uses the Bolton (1980) formula, accurate to ~0.1 %
between -35 C and +35 C, which is the operative range for surface fluxes and
convection in a climate model of this class.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import CP, EPSILON, KAPPA, LATENT_HEAT_VAP, P0, RD, RV, T_FREEZE


def saturation_vapor_pressure(temperature):
    """Saturation vapor pressure over liquid water (Pa).

    Bolton (1980): e_s = 611.2 exp(17.67 (T - 273.15) / (T - 29.65)).
    """
    t = np.asarray(temperature, dtype=float)
    return 611.2 * np.exp(17.67 * (t - T_FREEZE) / (t - 29.65))


def saturation_mixing_ratio(temperature, pressure):
    """Saturation water-vapor mixing ratio (kg/kg) at temperature (K), pressure (Pa)."""
    es = saturation_vapor_pressure(temperature)
    p = np.asarray(pressure, dtype=float)
    # Cap e_s below total pressure so the formula stays finite in thin layers.
    es = np.minimum(es, 0.5 * p)
    return EPSILON * es / (p - es)


def potential_temperature(temperature, pressure):
    """Potential temperature theta = T (p0/p)^kappa."""
    return np.asarray(temperature, dtype=float) * (P0 / np.asarray(pressure, dtype=float)) ** KAPPA


def temperature_from_theta(theta, pressure):
    """Invert potential temperature back to absolute temperature."""
    return np.asarray(theta, dtype=float) * (np.asarray(pressure, dtype=float) / P0) ** KAPPA


def virtual_temperature(temperature, mixing_ratio):
    """Virtual temperature T_v = T (1 + r/eps) / (1 + r) ~ T (1 + 0.608 q)."""
    q = np.asarray(mixing_ratio, dtype=float)
    return np.asarray(temperature, dtype=float) * (1.0 + q / EPSILON) / (1.0 + q)


def moist_static_energy(temperature, height, mixing_ratio):
    """Moist static energy h = cp T + g z + L q (J/kg)."""
    from repro.util.constants import GRAVITY

    return (
        CP * np.asarray(temperature, dtype=float)
        + GRAVITY * np.asarray(height, dtype=float)
        + LATENT_HEAT_VAP * np.asarray(mixing_ratio, dtype=float)
    )


def dewpoint(vapor_pressure):
    """Dewpoint temperature (K) from vapor pressure (Pa); inverse of Bolton."""
    e = np.maximum(np.asarray(vapor_pressure, dtype=float), 1e-12)
    ln_ratio = np.log(e / 611.2)
    return (T_FREEZE * 17.67 - 29.65 * ln_ratio) / (17.67 - ln_ratio)


def gas_constant_moist(mixing_ratio):
    """Effective gas constant of moist air."""
    q = np.asarray(mixing_ratio, dtype=float)
    return RD * (1.0 + q * RV / RD) / (1.0 + q)
