"""Moist thermodynamics helpers used by the atmosphere physics and coupler.

All functions are vectorized over NumPy arrays and accept scalars.  The
saturation vapor pressure uses the Bolton (1980) formula, accurate to ~0.1 %
between -35 C and +35 C, which is the operative range for surface fluxes and
convection in a climate model of this class.
"""

from __future__ import annotations

import numpy as np

from repro.util.constants import CP, EPSILON, KAPPA, LATENT_HEAT_VAP, P0, RD, RV, T_FREEZE


def _asfloat(x) -> np.ndarray:
    """Coerce to a floating array *without* forcing float64.

    ``np.asarray(x, dtype=float)`` silently promoted float32 model fields to
    float64 inside every thermodynamic call, defeating a reduced-precision
    run.  This keeps whatever float dtype the caller supplied and only
    promotes non-float input (ints, lists, python scalars) to float64.
    """
    arr = np.asarray(x)
    return arr if arr.dtype.kind == "f" else arr.astype(np.float64)


def saturation_vapor_pressure(temperature):
    """Saturation vapor pressure over liquid water (Pa).

    Bolton (1980): e_s = 611.2 exp(17.67 (T - 273.15) / (T - 29.65)).
    """
    t = _asfloat(temperature)
    return 611.2 * np.exp(17.67 * (t - T_FREEZE) / (t - 29.65))


def saturation_mixing_ratio(temperature, pressure):
    """Saturation water-vapor mixing ratio (kg/kg) at temperature (K), pressure (Pa)."""
    es = saturation_vapor_pressure(temperature)
    p = _asfloat(pressure)
    # Cap e_s below total pressure so the formula stays finite in thin layers.
    es = np.minimum(es, 0.5 * p)
    return EPSILON * es / (p - es)


def potential_temperature(temperature, pressure):
    """Potential temperature theta = T (p0/p)^kappa."""
    return _asfloat(temperature) * (P0 / _asfloat(pressure)) ** KAPPA


def temperature_from_theta(theta, pressure):
    """Invert potential temperature back to absolute temperature."""
    return _asfloat(theta) * (_asfloat(pressure) / P0) ** KAPPA


def virtual_temperature(temperature, mixing_ratio):
    """Virtual temperature T_v = T (1 + r/eps) / (1 + r) ~ T (1 + 0.608 q)."""
    q = _asfloat(mixing_ratio)
    return _asfloat(temperature) * (1.0 + q / EPSILON) / (1.0 + q)


def moist_static_energy(temperature, height, mixing_ratio):
    """Moist static energy h = cp T + g z + L q (J/kg)."""
    from repro.util.constants import GRAVITY

    return (
        CP * _asfloat(temperature)
        + GRAVITY * _asfloat(height)
        + LATENT_HEAT_VAP * _asfloat(mixing_ratio)
    )


def dewpoint(vapor_pressure):
    """Dewpoint temperature (K) from vapor pressure (Pa); inverse of Bolton."""
    e = np.maximum(_asfloat(vapor_pressure), 1e-12)
    ln_ratio = np.log(e / 611.2)
    return (T_FREEZE * 17.67 - 29.65 * ln_ratio) / (17.67 - ln_ratio)


def gas_constant_moist(mixing_ratio):
    """Effective gas constant of moist air."""
    q = _asfloat(mixing_ratio)
    return RD * (1.0 + q * RV / RD) / (1.0 + q)
