"""Physical and planetary constants shared by all FOAM components.

Values follow the conventions of the NCAR CCM2/CCM3 technical notes that the
paper's atmosphere component is derived from, rounded to the precision a
climate model actually uses.
"""

from __future__ import annotations

# --- planetary geometry / rotation -------------------------------------
EARTH_RADIUS = 6.371e6          # m
OMEGA = 7.292e-5                # s^-1, Earth's rotation rate
GRAVITY = 9.80616               # m s^-2

# --- dry air thermodynamics ---------------------------------------------
RD = 287.04                     # J kg^-1 K^-1, gas constant for dry air
CP = 1004.64                    # J kg^-1 K^-1, specific heat at const p
KAPPA = RD / CP                 # Poisson constant
RV = 461.5                      # J kg^-1 K^-1, gas constant for vapor
EPSILON = RD / RV               # ratio of gas constants (~0.622)

# --- water --------------------------------------------------------------
LATENT_HEAT_VAP = 2.501e6       # J kg^-1, latent heat of vaporization
LATENT_HEAT_FUS = 3.337e5       # J kg^-1, latent heat of fusion
LATENT_HEAT_SUB = LATENT_HEAT_VAP + LATENT_HEAT_FUS
RHO_WATER = 1000.0              # kg m^-3, fresh water density
RHO_SEAWATER = 1025.0           # kg m^-3, reference seawater density
CP_SEAWATER = 3990.0            # J kg^-1 K^-1
CP_FRESHWATER = 4187.0          # J kg^-1 K^-1

# --- radiation ----------------------------------------------------------
STEFAN_BOLTZMANN = 5.67e-8      # W m^-2 K^-4
SOLAR_CONSTANT = 1367.0         # W m^-2

# --- reference states ---------------------------------------------------
P0 = 1.0e5                      # Pa, reference surface pressure
T_REF = 288.0                   # K, reference surface temperature
T_FREEZE = 273.15               # K, freezing point of fresh water
T_FREEZE_SEA = T_FREEZE - 1.92  # K, the paper's sea-surface clamp (-1.92 C)

# --- FOAM coupler parameters straight out of the paper ------------------
SOIL_MOISTURE_CAPACITY = 0.15   # m: the 15 cm bucket of the hydrology model
SNOW_RUNOFF_DEPTH = 1.0         # m liquid equivalent: excess snow -> river
RIVER_FLOW_VELOCITY = 0.35     # m s^-1, Miller et al. effective velocity
SEAICE_FRESHWATER_DEPTH = 2.0   # m of water removed from ocean on freezing
SEAICE_STRESS_DIVISOR = 15.0    # ice->ocean stress arbitrarily divided by 15

SECONDS_PER_DAY = 86400.0
DAYS_PER_YEAR = 365.0
SECONDS_PER_YEAR = SECONDS_PER_DAY * DAYS_PER_YEAR
