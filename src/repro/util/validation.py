"""Small argument-validation helpers used across the library.

Raising early with a precise message is cheaper than debugging NaNs three
subsystems downstream, which is how coupled models usually fail.
"""

from __future__ import annotations

import numpy as np


def require_positive(value, name: str):
    """Raise ValueError unless ``value`` is strictly positive (scalar)."""
    if not np.isscalar(value) and np.asarray(value).ndim != 0:
        raise TypeError(f"{name} must be a scalar, got array of shape {np.shape(value)}")
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_shape(array, shape: tuple, name: str):
    """Raise ValueError unless ``array`` has exactly the given shape."""
    a = np.asarray(array)
    if a.shape != tuple(shape):
        raise ValueError(f"{name} must have shape {tuple(shape)}, got {a.shape}")
    return a


def require_in_range(value, lo, hi, name: str):
    """Raise ValueError unless lo <= value <= hi."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def require_finite(array, name: str):
    """Raise FloatingPointError if the array contains NaN or Inf."""
    a = np.asarray(array)
    if not np.all(np.isfinite(a)):
        bad = int(np.count_nonzero(~np.isfinite(a)))
        raise FloatingPointError(f"{name} contains {bad} non-finite values")
    return a
