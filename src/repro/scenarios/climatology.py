"""Reduce a scenario run to a compact, regression-checkable climatology.

``scenario_climatology`` integrates a built world for a few simulated days
and boils the trajectory down to a handful of scalar diagnostics — global
surface temperature, ocean SST, a precipitation proxy, ice cover, ocean
kinetic energy, and mass/heat drift measures.  These are the numbers the
per-scenario CI regression matrix pins against the committed goldens in
``tests/data/scenario_climatology.json``: one drifting world shows up as
one named red job, not a buried tier-1 failure.

Tolerances are physically motivated (what a climate scientist would call
"the same short run"), wide enough to absorb BLAS/platform noise and
narrow enough to catch a real numerics change.
"""

from __future__ import annotations

import numpy as np

from repro.core.foam import FoamModel, FoamState

#: Days every golden climatology is integrated for (test-size grids).
#: Four days: long enough for the doubled-CO2 column-temperature signal to
#: clear platform noise by orders of magnitude, short enough that weather
#: chaos has not yet swamped the forced surface-temperature ordering.
GOLDEN_DAYS = 4.0

#: Per-metric golden tolerances: (absolute, relative).  A comparison
#: passes when |got - want| <= abs_tol + rel_tol * |want|.
TOLERANCES: dict[str, tuple[float, float]] = {
    "ts_global_k": (0.5, 0.0),
    "t_atm_k": (0.5, 0.0),
    "sst_ocean_c": (0.25, 0.0),
    "precip_mm_day": (0.05, 0.15),
    "evap_mm_day": (0.2, 0.1),
    "ice_fraction": (0.05, 0.0),
    "ocean_ke_j": (1.0, 0.25),
    "mass_drift_rel": (1e-5, 0.0),
    "ocean_heat_uptake_wm2": (10.0, 0.0),
}


def _area_weights(model: FoamModel) -> np.ndarray:
    a = model.coupler.atm_cell_areas
    return a / a.sum()


def _ocean_areas(model: FoamModel) -> np.ndarray:
    return np.where(model.ocean.mask2d, model.ocean.grid.cell_areas(), 0.0)


def state_metrics(model: FoamModel, state: FoamState) -> dict:
    """Instantaneous scalar diagnostics of one (serial) coupled state."""
    w = _area_weights(model)
    sst = model.ocean.sst(state.ocean)
    surface = model.coupler.surface_state_for_atm(state.coupler, sst)
    oa = _ocean_areas(model)
    oa_total = oa.sum()
    diag = model.dycore.diagnose(state.atm_curr)
    # Mass-weighted global-mean air temperature: the fast-responding
    # greenhouse metric (CO2 cuts OLR immediately; the heat shows up in
    # the column long before the ocean skin moves).
    dp = model.dycore.vg.dsigma[:, None, None] * diag.ps[None, :, :]
    wdp = dp * w[None, :, :]
    return {
        "ts_global_k": float(np.sum(surface.t_sfc * w)),
        "t_atm_k": float(np.sum(diag.temp * wdp) / np.sum(wdp)),
        "sst_ocean_c": float(np.sum(np.nan_to_num(sst) * oa) / oa_total),
        "ice_fraction": float(
            np.sum(np.where(state.coupler.ice.mask, oa, 0.0)) / oa_total),
        "ocean_ke_j": model.ocean.total_kinetic_energy(state.ocean),
        "mean_ps_pa": float(np.sum(diag.ps * w)),
    }


def ensemble_member_metrics(model: FoamModel, state: FoamState) -> list[dict]:
    """Per-member scalar diagnostics of a batched ensemble state.

    The batched-state equivalent of calling :func:`state_metrics` on each
    ``member_state`` extraction: ONE batched diagnose/synthesis pass over
    the whole (level, member) stack, per-member reductions at the end.
    Extracting members first costs nens full serial spectral diagnoses
    plus a deep copy of every field; this costs one batched diagnose.
    """
    from repro.util.constants import RHO_SEAWATER

    w = _area_weights(model)
    sst = model.ocean.sst(state.ocean)                   # (E, ny, nx)
    surface = model.coupler.surface_state_for_atm(state.coupler, sst)
    oa = _ocean_areas(model)
    oa_total = oa.sum()
    diag = model.dycore.diagnose(state.atm_curr)         # member axis after level
    dsig = model.dycore.vg.dsigma.reshape((-1,) + (1,) * diag.ps.ndim)
    wdp = dsig * diag.ps[None] * w                       # (L, E, nlat, nlon)
    hax = (-2, -1)
    ts = np.sum(surface.t_sfc * w, axis=hax)
    t_atm = (np.sum(diag.temp * wdp, axis=(0,) + hax)
             / np.sum(wdp, axis=(0,) + hax))
    sst_mean = np.sum(np.nan_to_num(sst) * oa, axis=hax) / oa_total
    ice = np.sum(np.where(state.coupler.ice.mask, oa, 0.0), axis=hax) / oa_total
    u, v = model.ocean.total_velocity(state.ocean)       # (L, E, ny, nx)
    vol = model.ocean.dz3d[:, None] * model.ocean.grid.cell_areas()[None, None]
    ke = 0.5 * RHO_SEAWATER * np.sum((u**2 + v**2) * vol, axis=(0,) + hax)
    ps = np.sum(diag.ps * w, axis=hax)
    return [{
        "ts_global_k": float(ts[e]),
        "t_atm_k": float(t_atm[e]),
        "sst_ocean_c": float(sst_mean[e]),
        "ice_fraction": float(ice[e]),
        "ocean_ke_j": float(ke[e]),
        "mean_ps_pa": float(ps[e]),
    } for e in range(ts.shape[0])]


def _ocean_heat_content(model: FoamModel, state: FoamState) -> float:
    from repro.core.diagnostics import ocean_heat_content
    return ocean_heat_content(state.ocean.temp, model.ocean.dz3d,
                              model.ocean.grid.cell_areas())


class ClimatologyObserver:
    """Accumulates the regression climatology as a run-harness observer.

    A :class:`~repro.runs.StepObserver` that reduces the trajectory the
    exact way the old inline loop did (``state_metrics`` after every
    coupled step plus the coupler's precip/evap totals), so the committed
    goldens are untouched by the harness refactor.  Attach it to any
    serial harness run and call :meth:`metrics` afterwards.
    """

    def __init__(self, model: FoamModel):
        self.model = model
        self.sums = {k: 0.0 for k in ("ts_global_k", "t_atm_k",
                                      "sst_ocean_c", "ice_fraction")}
        self.precip_sum = 0.0
        self.evap_sum = 0.0
        self.nsteps = 0
        self._start = None
        self._ohc0 = None

    def on_start(self, model, state) -> None:
        self._start = state_metrics(self.model, state)
        self._ohc0 = _ocean_heat_content(self.model, state)

    def on_step(self, model, state) -> None:
        inst = state_metrics(self.model, state)
        for k in self.sums:
            self.sums[k] += inst[k]
        cpl = self.model.last_coupler_diagnostics
        if cpl is not None:
            self.precip_sum += cpl.precip_total     # kg/s, global
            self.evap_sum += cpl.evap_total
        self.nsteps += 1

    def on_end(self, model, state) -> None:
        pass

    def metrics(self, state: FoamState) -> dict:
        """The climatology dict for the trajectory observed so far."""
        if self.nsteps == 0 or self._start is None:
            raise RuntimeError("no steps observed yet")
        model = self.model
        end = state_metrics(model, state)
        elapsed = self.nsteps * model.config.atm_dt
        ohc1 = _ocean_heat_content(model, state)
        oa_total = float(_ocean_areas(model).sum())
        area_atm = float(model.coupler.atm_cell_areas.sum())
        out = {k: self.sums[k] / self.nsteps for k in self.sums}
        out.update({
            # mm/day == kg m^-2 day^-1 of the global-mean rate.  Precip
            # is the real thing; evaporation is the active spin-up proxy
            # for hydrological-cycle intensity (the default dry-start
            # atmosphere takes weeks to first saturate, so precip pins at
            # 0 early on).
            "precip_mm_day": self.precip_sum / self.nsteps / area_atm
            * 86400.0,
            "evap_mm_day": self.evap_sum / self.nsteps / area_atm * 86400.0,
            "ocean_ke_j": end["ocean_ke_j"],
            "mass_drift_rel": abs(end["mean_ps_pa"] - self._start["mean_ps_pa"])
            / self._start["mean_ps_pa"],
            "ocean_heat_uptake_wm2": (ohc1 - self._ohc0)
            / (oa_total * elapsed),
        })
        return out


def scenario_climatology(model: FoamModel, state: FoamState,
                         days: float = GOLDEN_DAYS
                         ) -> tuple[FoamState, dict]:
    """Integrate ``days`` and reduce to the regression climatology dict.

    Time-mean quantities (surface temperature, SST, ice cover, precip) are
    averaged over every coupled step; drift diagnostics compare the end
    state against the start.  Drives the run harness's shared stepping
    loop with a :class:`ClimatologyObserver`.  Returns ``(final_state,
    metrics)``.
    """
    from repro.runs.harness import drive_steps

    nsteps = max(1, int(round(days * 86400.0 / model.config.atm_dt)))
    observer = ClimatologyObserver(model)
    state = drive_steps(model, state, nsteps, (observer,))
    return state, observer.metrics(state)


def compare_climatology(got: dict, want: dict,
                        tolerances: dict | None = None) -> list[str]:
    """Tolerance-checked comparison; returns human-readable violations.

    Metrics present in ``want`` but missing from ``got`` (or vice versa)
    are violations too — a climatology that silently loses a diagnostic
    is as suspect as one that drifts.
    """
    tol = dict(TOLERANCES)
    if tolerances:
        tol.update(tolerances)
    problems = []
    for key in sorted(want):
        if key not in got:
            problems.append(f"{key}: missing from run output")
            continue
        abs_tol, rel_tol = tol.get(key, (0.0, 0.05))
        limit = abs_tol + rel_tol * abs(want[key])
        err = abs(got[key] - want[key])
        if not np.isfinite(got[key]) or err > limit:
            problems.append(
                f"{key}: got {got[key]:.6g}, golden {want[key]:.6g} "
                f"(|err| {err:.3g} > tol {limit:.3g})")
    for key in sorted(set(got) - set(want)):
        problems.append(f"{key}: not in golden (regenerate goldens)")
    return problems
