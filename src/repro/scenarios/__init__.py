"""Scenario world-builder: declarative worlds over the coupled FOAM core.

One :class:`Scenario` call configures a whole planet — solar constant,
CO2, rotation, land-sea mask, ocean representation, initialization — as a
:class:`~repro.core.config.FoamConfig` delta that every execution layer
(serial, batched ensemble, concurrent rank pools) runs unchanged.

``python -m repro.scenarios`` is the CLI; ``scenario_climatology`` reduces
a run to the scalar diagnostics the per-scenario CI regression matrix pins.
"""

from repro.scenarios.climatology import (
    GOLDEN_DAYS,
    TOLERANCES,
    ClimatologyObserver,
    compare_climatology,
    scenario_climatology,
    state_metrics,
)
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.spec import BASE_CONFIGS, Scenario

__all__ = [
    "Scenario", "BASE_CONFIGS",
    "register", "get_scenario", "scenario_names", "all_scenarios",
    "scenario_climatology", "state_metrics", "compare_climatology",
    "ClimatologyObserver", "GOLDEN_DAYS", "TOLERANCES",
]
