"""Scenario CLI: list, describe, and run the registered worlds.

Usage::

    python -m repro.scenarios list [--json]
    python -m repro.scenarios describe NAME [--json]
    python -m repro.scenarios run NAME [--days D] [--size test|small|paper]
                                       [--ensemble N] [--substrate S]
                                       [--atm-ranks N] [--ocn-ranks N]
                                       [--checkpoint-dir DIR]
                                       [--checkpoint-days D]
                                       [--history-dir DIR] [--history-days D]
                                       [--resume CKPT] [--json]
    python -m repro.scenarios golden [--days D] [--out PATH] [NAME ...]

``run`` builds a declarative :class:`~repro.runs.RunPlan` and executes it
through the :class:`~repro.runs.RunHarness` — the same stepping loop
whatever the mode: serial (default, with a climatology summary),
``--ensemble N`` (N perturbed members as one batch, spread reported), or
``--substrate``/``--atm-ranks``/``--ocn-ranks`` (concurrent rank pools).
``--checkpoint-dir`` streams bitwise-resumable checkpoints,
``--history-dir`` streams rolling history files, and ``--resume CKPT``
continues any prior run's checkpoint up to ``--days`` total — on any
substrate, not just the one that wrote it.  ``golden`` regenerates the
committed regression climatologies.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.runs import CheckpointSpec, HistorySpec, RunHarness, RunPlan
from repro.scenarios.climatology import (
    GOLDEN_DAYS,
    ClimatologyObserver,
    ensemble_member_metrics,
    scenario_climatology,
    state_metrics,
)
from repro.scenarios.registry import all_scenarios, get_scenario, scenario_names


def _print(obj, as_json: bool, text: str) -> None:
    print(json.dumps(obj, indent=2, sort_keys=True) if as_json else text)


# ----------------------------------------------------------------------
def cmd_list(args) -> int:
    scenarios = all_scenarios()
    if args.json:
        print(json.dumps(
            [{"name": s.name, "description": s.description,
              "tags": list(s.tags), "knobs": s.knob_summary()}
             for s in scenarios], indent=2))
        return 0
    width = max(len(s.name) for s in scenarios)
    for s in scenarios:
        knobs = ", ".join(f"{k}={v}" for k, v in s.knob_summary().items())
        print(f"{s.name:<{width}}  {s.description}")
        if knobs:
            print(f"{'':<{width}}  knobs: {knobs}")
    return 0


def cmd_describe(args) -> int:
    s = get_scenario(args.name)
    cfg = s.config(args.size)
    info = {"name": s.name, "description": s.description,
            "tags": list(s.tags), "knobs": s.knob_summary(),
            "config": cfg.to_dict()}
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"{s.name}: {s.description}")
    if s.tags:
        print(f"  tags: {', '.join(s.tags)}")
    for k, v in s.knob_summary().items():
        print(f"  {k} = {v}")
    print(f"  config ({args.size}): atm {cfg.atm_nlon}x{cfg.atm_nlat}"
          f"x{cfg.atm_nlev} R{cfg.atm_mmax}, "
          f"ocean {cfg.ocn_nx}x{cfg.ocn_ny}x{cfg.ocn_nlev} "
          f"({cfg.ocean_mode})")
    return 0


# ----------------------------------------------------------------------
def _plan_from_args(scenario, args) -> RunPlan:
    """Translate CLI flags into the declarative run plan."""
    if args.ensemble and (args.substrate or args.atm_ranks != 1):
        raise SystemExit("--ensemble and --substrate/--atm-ranks are "
                         "mutually exclusive")
    if args.substrate or args.atm_ranks != 1 or args.ocn_ranks != 1:
        mode = "concurrent"
    elif args.ensemble:
        mode = "ensemble"
    else:
        mode = "serial"
    from repro.scenarios.spec import BASE_CONFIGS
    return RunPlan(
        config=BASE_CONFIGS[args.size](), scenario=scenario.name,
        days=args.days, mode=mode,
        nens=args.ensemble or 1,
        ic_perturbation=args.perturb if args.ensemble else 0.0,
        n_atm=args.atm_ranks, n_ocn=args.ocn_ranks,
        substrate=args.substrate,
        history=(HistorySpec(args.history_dir,
                             interval_days=args.history_days)
                 if args.history_dir else None),
        checkpoint=(CheckpointSpec(args.checkpoint_dir,
                                   interval_days=args.checkpoint_days)
                    if args.checkpoint_dir else None))


def cmd_run(args) -> int:
    scenario = get_scenario(args.name)
    plan = _plan_from_args(scenario, args)
    harness = RunHarness(plan)
    clim = ClimatologyObserver(harness.model) if plan.mode == "serial" else None
    result = harness.run(resume_from=args.resume,
                         observers=(clim,) if clim else ())

    body: dict = {"mode": plan.mode, "run_key": result.run_key}
    if plan.mode == "serial":
        body["climatology"] = clim.metrics(result.state)
    elif plan.mode == "ensemble":
        ens = harness.ensemble
        # One batched diagnose over the (nens, ...) state — no per-member
        # member_state extraction.
        members = ensemble_member_metrics(ens.model, result.state)
        ts = [m["ts_global_k"] for m in members]
        body.update(nens=ens.nens, members=members,
                    ts_global_k_mean=sum(ts) / len(ts),
                    ts_spread_k=max(ts) - min(ts))
    else:
        final = state_metrics(harness.model, result.state)
        final.pop("mean_ps_pa", None)
        body.update(substrate=result.concurrent[-1].substrate
                    if result.concurrent else plan.substrate,
                    world_size=plan.n_atm + 1 + plan.n_ocn,
                    nsteps=result.steps,
                    wall_seconds=result.wall_seconds,
                    hidden_fraction=result.hidden_fraction,
                    final_state=final)
    if args.resume:
        body["resumed_from_step"] = result.start_step
    if result.checkpoints:
        body["checkpoints"] = [str(p) for p in result.checkpoints]
    if result.history_files:
        body["history_files"] = [str(p) for p in result.history_files]

    out = {"scenario": scenario.name, "days": args.days,
           "size": args.size, **body}
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
        return 0
    print(f"{scenario.name}: {args.days} simulated days "
          f"({args.size} resolution, {body['mode']})")
    if args.resume:
        print(f"  resumed from step        {result.start_step} "
              f"({result.steps} steps run)")
    table = body.get("climatology") or body.get("final_state") or {}
    for k in sorted(table):
        print(f"  {k:<24} {table[k]:.6g}")
    if body["mode"] == "ensemble":
        print(f"  members                  {body['nens']}")
        print(f"  ts_global_k_mean         {body['ts_global_k_mean']:.6g}")
        print(f"  ts_spread_k              {body['ts_spread_k']:.3g}")
    if body["mode"] == "concurrent":
        print(f"  wall_seconds             {body['wall_seconds']:.3g}")
        print(f"  hidden_fraction          {body['hidden_fraction']:.3g}")
    if result.checkpoints:
        print(f"  checkpoints              {len(result.checkpoints)} "
              f"(last: {result.checkpoints[-1]})")
    if result.history_files:
        print(f"  history files            {len(result.history_files)}")
    return 0


def cmd_golden(args) -> int:
    names = args.names or scenario_names()
    out = {"_meta": {"days": args.days, "size": "test",
                     "command": "python -m repro.scenarios golden"},
           "scenarios": {}}
    for name in names:
        model, state = get_scenario(name).build("test")
        _, clim = scenario_climatology(model, state, days=args.days)
        out["scenarios"][name] = clim
        print(f"{name}: ts={clim['ts_global_k']:.3f} K  "
              f"ice={clim['ice_fraction']:.3f}  "
              f"precip={clim['precip_mm_day']:.3f} mm/day", file=sys.stderr)
    text = json.dumps(out, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="FOAM scenario world-builder: list, describe, run.")
    sub = p.add_subparsers(dest="command", required=True)

    lp = sub.add_parser("list", help="list registered scenarios")
    lp.add_argument("--json", action="store_true")
    lp.set_defaults(func=cmd_list)

    dp = sub.add_parser("describe", help="show one scenario's knobs/config")
    dp.add_argument("name")
    dp.add_argument("--size", default="test",
                    choices=("test", "small", "paper"))
    dp.add_argument("--json", action="store_true")
    dp.set_defaults(func=cmd_describe)

    rp = sub.add_parser("run", help="integrate a scenario and summarize")
    rp.add_argument("name")
    rp.add_argument("--days", type=float, default=1.0)
    rp.add_argument("--size", default="test",
                    choices=("test", "small", "paper"))
    rp.add_argument("--ensemble", type=int, default=0, metavar="N",
                    help="run N perturbed members as one batch")
    rp.add_argument("--perturb", type=float, default=1e-8,
                    help="ensemble IC vorticity noise amplitude "
                         "(matches the model's own 1e-8 IC noise; much "
                         "larger values destabilize polar land caps)")
    rp.add_argument("--substrate", default=None,
                    choices=("thread", "process"),
                    help="drive the concurrent rank-pool driver")
    rp.add_argument("--atm-ranks", type=int, default=1)
    rp.add_argument("--ocn-ranks", type=int, default=1)
    rp.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                    help="stream bitwise-resumable checkpoints here")
    rp.add_argument("--checkpoint-days", type=float, default=0.5,
                    help="checkpoint cadence in simulated days (must land "
                         "on safe coupling/radiation boundaries)")
    rp.add_argument("--history-dir", default=None, metavar="DIR",
                    help="stream rolling history files here")
    rp.add_argument("--history-days", type=float, default=0.25,
                    help="history sampling cadence in simulated days")
    rp.add_argument("--resume", default=None, metavar="CKPT",
                    help="resume from a checkpoint file; --days is the "
                         "run's total duration from time zero")
    rp.add_argument("--json", action="store_true")
    rp.set_defaults(func=cmd_run)

    gp = sub.add_parser("golden",
                        help="regenerate the regression climatologies")
    gp.add_argument("names", nargs="*", metavar="NAME")
    gp.add_argument("--days", type=float, default=GOLDEN_DAYS)
    gp.add_argument("--out", default="tests/data/scenario_climatology.json")
    gp.set_defaults(func=cmd_golden)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
