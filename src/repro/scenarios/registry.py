"""The scenario registry: the worlds this model ships with.

Each entry is a :class:`~repro.scenarios.spec.Scenario` — a declarative
bundle of physical knobs.  ``register`` accepts user-defined scenarios at
runtime; the built-ins below cover the idealized-climate canon (aquaplanet,
snowball, doubled CO2, slab ocean, tidally locked exoplanet, Pangaea-style
paleo world) plus the paper's Earth as ``control``.

Every registered scenario is held to a committed golden climatology
(``tests/data/scenario_climatology.json``) in CI — adding a world here
means regenerating the goldens (``python -m repro.scenarios golden``) so
the new world joins the regression matrix.
"""

from __future__ import annotations

from repro.scenarios.spec import Scenario
from repro.util.constants import SOLAR_CONSTANT

_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (name-keyed); returns it for chaining."""
    if not scenario.name:
        raise ValueError("scenario needs a non-empty name")
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {scenario.name!r} already registered "
                         "(pass replace=True to override)")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; "
                         f"registered: {scenario_names()}") from None


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> list[Scenario]:
    """All registered scenarios, name-sorted."""
    return [_REGISTRY[n] for n in scenario_names()]


# ----------------------------------------------------------------------
# built-in worlds
# ----------------------------------------------------------------------
register(Scenario(
    name="control",
    description="The paper's Earth: world topography, full ocean, "
                "present-day solar constant and CO2.",
    tags=("earth", "reference")))

register(Scenario(
    name="aquaplanet",
    description="All-ocean planet at uniform depth; the cleanest "
                "baseline for perturbation experiments.",
    topography="aquaplanet",
    tags=("idealized",)))

register(Scenario(
    name="snowball",
    description="Snowball initiation: faint-sun insolation (94%), a cold "
                "unstratified ocean, and 1 m of sea ice everywhere — the "
                "high-albedo frozen branch of the hysteresis.",
    topography="aquaplanet",
    solar_constant=0.94 * SOLAR_CONSTANT,
    ocean_init="cold_uniform",
    initial_ice_thickness=1.0,
    tags=("idealized", "paleo")))

register(Scenario(
    name="doubled_co2",
    description="The classic sensitivity experiment: the aquaplanet "
                "baseline under doubled CO2 (710 ppmv).",
    topography="aquaplanet",
    co2_ppmv=710.0,
    tags=("idealized", "forcing")))

register(Scenario(
    name="slab_ocean",
    description="World topography over a motionless 50 m mixed-layer "
                "(slab) ocean: the fast lower boundary for "
                "atmosphere-focused studies.",
    ocean_mode="slab",
    tags=("earth", "fast")))

register(Scenario(
    name="tidally_locked",
    description="Tidally locked slow rotator: 16x slower spin with the "
                "sun fixed over longitude 180 on an aquaplanet — "
                "permanent day and night hemispheres.",
    topography="aquaplanet",
    rotation_factor=1.0 / 16.0,
    subsolar_lon_deg=180.0,
    tags=("exoplanet",)))

register(Scenario(
    name="paleo",
    description="Pangaea-style supercontinent with a Tethys embayment in "
                "a circumglobal Panthalassa ocean.",
    topography="paleo",
    tags=("paleo",)))
