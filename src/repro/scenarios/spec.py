"""Declarative scenario specs: one object describes a whole world.

ExoPlaSim-style world building for the FOAM reproduction: a
:class:`Scenario` holds the small set of physical knobs that distinguish
one climate from another — solar constant, CO2, rotation rate, land-sea
mask, ocean representation and initialization — and maps them onto a
:class:`~repro.core.config.FoamConfig` delta.  Everything downstream
(serial runs, batched ensembles, concurrent rank pools) consumes the
config, so a scenario built here runs on every substrate unchanged.

A scenario with all-default knobs builds *exactly* the model a plain
``FoamModel(config)`` would: the layer adds no silent drift (regression-
pinned bitwise in ``tests/test_scenarios.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.config import FoamConfig, small_config, test_config
from repro.core.foam import FoamModel, FoamState
from repro.util.constants import SOLAR_CONSTANT

#: Named base resolutions for scenario runs (``--size`` on the CLI).
BASE_CONFIGS = {
    "test": test_config,
    "small": small_config,
    "paper": FoamConfig,
}


@dataclass(frozen=True)
class Scenario:
    """A named world: physical knobs plus bookkeeping.

    Every knob defaults to the paper's Earth; a scenario is the sparse set
    of deviations.  ``config_overrides`` passes any further
    :class:`FoamConfig` field (resolution, time steps, seeds) verbatim.
    """

    name: str
    description: str
    # --- physical knobs (mirror the FoamConfig scenario fields) --------
    solar_constant: float = SOLAR_CONSTANT
    co2_ppmv: float = 355.0
    rotation_factor: float = 1.0
    subsolar_lon_deg: float | None = None
    topography: str = "world"
    ocean_mode: str = "full"
    mixed_layer_depth: float = 50.0
    ocean_init: str = "rest_stratified"
    initial_ice_thickness: float = 0.0
    config_overrides: dict = field(default_factory=dict)
    #: Free-form labels ("idealized", "exoplanet", "paleo") for listings.
    tags: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def config(self, base: FoamConfig | str | None = None) -> FoamConfig:
        """The scenario's :class:`FoamConfig` on a chosen base resolution.

        ``base`` may be a config instance, a named size from
        :data:`BASE_CONFIGS` ("test", "small", "paper"), or None (test
        size — the resolution the regression climatologies are pinned at).
        """
        if base is None:
            base = test_config()
        elif isinstance(base, str):
            try:
                base = BASE_CONFIGS[base]()
            except KeyError:
                raise ValueError(
                    f"unknown base config {base!r}; "
                    f"choose from {sorted(BASE_CONFIGS)}") from None
        knobs = dict(
            solar_constant=self.solar_constant,
            co2_ppmv=self.co2_ppmv,
            rotation_factor=self.rotation_factor,
            subsolar_lon_deg=self.subsolar_lon_deg,
            topography=self.topography,
            ocean_mode=self.ocean_mode,
            mixed_layer_depth=self.mixed_layer_depth,
            ocean_init=self.ocean_init,
            initial_ice_thickness=self.initial_ice_thickness,
        )
        knobs.update(self.config_overrides)
        return dataclasses.replace(base, **knobs)

    def build(self, base: FoamConfig | str | None = None
              ) -> tuple[FoamModel, FoamState]:
        """Construct the fully-initialized world: (model, initial state)."""
        model = FoamModel(self.config(base))
        return model, model.initial_state()

    # ------------------------------------------------------------------
    def knob_summary(self) -> dict:
        """The non-default physical knobs, for listings and --json output."""
        ref = Scenario(name="", description="")
        out = {}
        for f in dataclasses.fields(self):
            if f.name in ("name", "description", "tags", "config_overrides"):
                continue
            value = getattr(self, f.name)
            if value != getattr(ref, f.name):
                out[f.name] = value
        if self.config_overrides:
            out["config_overrides"] = dict(self.config_overrides)
        return out
